#pragma once
/// \file scheduler.hpp
/// Lock-free work-stealing scheduler: the unified shared-memory execution
/// substrate for the repo.
///
/// Each worker owns a Chase–Lev deque (chase_lev_deque.hpp): recursive
/// submissions from a worker are a lock-free push/pop on its own deque, and
/// idle workers steal batches from random victims (oldest tasks first, so a
/// stolen batch preserves the victim's FIFO order). External threads submit
/// through small per-worker mutex inboxes that workers drain in bulk into
/// their deques — one brief lock per task on the producer side, amortized
/// on the consumer side, never on the worker↔worker hot path.
///
/// Idle workers back off (spin → yield → park on a condition variable), so
/// a draining scheduler does not burn 100% CPU; parked time is recorded
/// per worker. Quiescence is per-TaskGroup: every submission may carry a
/// completion token, so independent waves of work on one scheduler wait
/// only for their own tasks (unlike the old ThreadPool::wait_idle()).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/cancel.hpp"
#include "runtime/chase_lev_deque.hpp"
#include "runtime/trace.hpp"

namespace pmpl::runtime {

/// Per-worker execution counters, exported after a run (see
/// loadbal::summarize_workers for the load-balance view).
struct WorkerCounters {
  std::uint64_t executed_local = 0;   ///< taken from own deque/inbox
  std::uint64_t executed_stolen = 0;  ///< taken from another worker
  std::uint64_t steal_attempts = 0;   ///< victim probes (deque or inbox)
  std::uint64_t steal_failures = 0;   ///< probes that found nothing
  double park_s = 0.0;                ///< time spent parked, not spinning
};

/// Completion token: counts outstanding tasks of one logical wave. A plain
/// atomic — sleeping waiters park on the scheduler's condition variable, so
/// the group itself can be a short-lived stack object.
///
/// A tracked task that throws does not take the process down: the first
/// exception of the wave is captured here and rethrown by Scheduler::wait
/// (and therefore by parallel_for) at the join point; later exceptions of
/// the same wave are dropped, matching the usual fork/join convention.
class TaskGroup {
 public:
  TaskGroup() = default;
  /// Cancel-aware group: once `cancel` fires, tasks of this group that are
  /// still queued are *dropped* (completion-counted but never executed), so
  /// a cancelled wave drains in O(queued) pointer work instead of running
  /// every remaining task — the scheduler half of the bounded-overrun
  /// guarantee. Tasks already running are expected to poll the same token.
  explicit TaskGroup(const CancelToken* cancel) noexcept : cancel_(cancel) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  bool finished() const noexcept {
    return outstanding_.load(std::memory_order_seq_cst) == 0;
  }

  const CancelToken* cancel_token() const noexcept { return cancel_; }

  /// Tasks dropped unexecuted because the group's token fired.
  std::uint64_t skipped() const noexcept {
    return skipped_.load(std::memory_order_acquire);
  }

  /// True when some tracked task threw and wait() has not yet rethrown it.
  bool has_error() const noexcept {
    return has_error_.load(std::memory_order_acquire);
  }

 private:
  friend class Scheduler;

  void store_error(std::exception_ptr e) noexcept {
    std::lock_guard lock(error_mutex_);
    if (!error_) {
      error_ = std::move(e);
      has_error_.store(true, std::memory_order_release);
    }
  }

  std::exception_ptr take_error() noexcept {
    std::lock_guard lock(error_mutex_);
    has_error_.store(false, std::memory_order_release);
    return std::exchange(error_, nullptr);
  }

  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<bool> has_error_{false};
  const CancelToken* cancel_ = nullptr;
  std::atomic<std::uint64_t> skipped_{0};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

struct SchedulerOptions {
  bool steal = true;  ///< false: tasks run only on their targeted worker
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< victim-selection streams
  std::uint32_t steal_batch_max = 16;  ///< cap on extra tasks per steal
  /// Quiescence watchdog: when > 0, a wait() whose group makes no progress
  /// for this many seconds reports the apparent hang (and keeps reporting
  /// every further stalled interval) instead of blocking silently.
  double watchdog_s = 0.0;
  /// Watchdog sink; stderr when unset. Called outside scheduler locks, but
  /// must not call back into the scheduler. Receives the stalled group's
  /// outstanding-task count.
  std::function<void(std::int64_t)> on_watchdog;
  /// Tracing sink; nullptr (the default) disables tracing entirely — no
  /// events, no extra work, no behavioral change. When set, each worker
  /// records task spans, steal instants (arg = victim), cancel-drop
  /// instants and park spans on its own wall-time thread track. Must
  /// outlive the scheduler.
  Tracer* tracer = nullptr;
};

/// Fixed set of worker threads over per-worker Chase–Lev deques.
///
/// Thread-safety: submit/submit_to/wait may be called from any thread,
/// including scheduler workers (recursive submission is the cheap path).
/// The destructor drains all remaining tasks, then joins the workers; as
/// with the old ThreadPool, submitting concurrently with destruction is
/// undefined.
class Scheduler {
 public:
  explicit Scheduler(std::size_t threads = std::thread::hardware_concurrency(),
                     SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task, optionally tracked by `group`. From a worker thread
  /// this is a lock-free push onto its own deque; from outside, tasks
  /// round-robin across worker inboxes.
  void submit(std::function<void()> fn, TaskGroup* group = nullptr);

  /// Enqueue a task for a specific worker. With stealing enabled this is
  /// an initial placement hint; with stealing disabled it is binding.
  void submit_to(std::uint32_t worker, std::function<void()> fn,
                 TaskGroup* group = nullptr);

  /// Block until every task tracked by `group` has finished. Called from a
  /// worker of this scheduler, the worker helps execute queued tasks
  /// instead of blocking (recursive parallel_for does not deadlock).
  /// Rethrows the first exception thrown by a task of the group.
  void wait(TaskGroup& group);

  /// First exception thrown by a task submitted *without* a group (nobody
  /// joins those, so it is latched here instead of silently swallowed).
  /// Returns nullptr when none; clears the slot.
  std::exception_ptr take_orphan_error();

  /// Index of the calling scheduler worker, or -1 for external threads.
  int current_worker() const noexcept;

  /// Snapshot of the per-worker counters.
  std::vector<WorkerCounters> counters() const;

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  struct Worker {
    ChaseLevDeque<Task*> deque;
    std::mutex inbox_mutex;
    std::deque<Task*> inbox;
    std::atomic<std::int64_t> inbox_size{0};
    // Counters: written by the owning worker only; atomics so that
    // counters() snapshots are race-free while workers run.
    std::atomic<std::uint64_t> executed_local{0};
    std::atomic<std::uint64_t> executed_stolen{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_failures{0};
    std::atomic<std::uint64_t> park_ns{0};
    TraceBuffer* trace = nullptr;  ///< this worker's track; null = tracing off
    std::thread thread;
  };

  void worker_loop(std::uint32_t w);
  void enqueue_to(std::uint32_t w, Task* task);
  void run_task(Task* task, Worker* self_or_null);
  Task* find_task(std::uint32_t w, std::uint64_t& rng_state);
  Task* try_steal(std::uint32_t w, std::uint32_t victim);
  void wake_all();
  void report_stall(std::int64_t outstanding);

  SchedulerOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint32_t> next_inbox_{0};  ///< round-robin for submit()

  /// Runnable-but-unclaimed tasks (deques + inboxes). seq_cst against
  /// `parked_`/`waiters_` to close the sleep/wake race (Dekker pattern).
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::int32_t> parked_{0};
  std::atomic<std::int32_t> waiters_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::mutex orphan_mutex_;
  std::exception_ptr orphan_error_;
};

/// Run fn(i) for i in [0, n), blocking until done. Waits only on this
/// call's own tasks (per-call TaskGroup), so concurrent parallel_for calls
/// on one scheduler do not serialize behind each other.
void parallel_for(Scheduler& sched, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 0);

/// Cancel-aware parallel_for: batches poll `cancel` between items, and
/// batches still queued when it fires are dropped by the scheduler.
/// Returns true iff every index ran; false means the loop was cut short
/// (some tail of the index space never executed). Overrun past the stop
/// signal is bounded by one item plus one task dispatch.
bool parallel_for_cancellable(Scheduler& sched, std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancelToken& cancel,
                              std::size_t chunk = 0);

}  // namespace pmpl::runtime
