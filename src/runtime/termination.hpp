#pragma once
/// \file termination.hpp
/// Safra's token-ring distributed termination detection.
///
/// The work-stealing phase has no global barrier: a processor that runs out
/// of regions keeps issuing steal requests, and the phase ends only when
/// every processor is idle and no messages are in flight. The DES engine
/// drives this detector exactly as an MPI implementation would: a token
/// circulates the ring; message sends/receives color processes black.
///
/// This class is pure protocol state — the transport (the DES) decides when
/// the token physically moves and at what latency, so detection *overhead*
/// is part of the simulated schedule, as in the real system.

#include <cstdint>
#include <vector>

namespace pmpl::runtime {

/// Protocol logic for Safra's algorithm over ranks 0..p-1 in a ring.
class SafraTermination {
 public:
  /// The circulating token.
  struct Token {
    std::int64_t count = 0;  ///< accumulated message balance
    bool black = false;
  };

  /// What a rank should do with a just-arrived token.
  enum class Action {
    kHold,       ///< rank is busy: keep the token until idle
    kForward,    ///< pass the (returned) token to the next rank
    kTerminate,  ///< rank 0 confirmed global termination
  };

  struct Decision {
    Action action;
    Token token;           ///< valid when action == kForward
    std::uint32_t next;    ///< destination rank when forwarding
  };

  explicit SafraTermination(std::uint32_t p)
      : p_(p), counts_(p, 0), black_(p, false) {}

  /// Rank 0 starts a detection round (must be idle). Returns the fresh
  /// token to forward to rank 1. Never declares termination — only a token
  /// that completed a full round may (see on_token_at_idle).
  Token initiate() noexcept {
    black_[0] = false;
    // The token starts at zero: rank 0's own balance is folded in only at
    // the end-of-round check (adding it here would double-count it).
    return Token{0, false};
  }

  /// A basic (non-token) message left `rank`.
  void on_send(std::uint32_t rank) noexcept { ++counts_[rank]; }

  /// A basic message arrived at `rank`; the receiver turns black.
  void on_receive(std::uint32_t rank) noexcept {
    --counts_[rank];
    black_[rank] = true;
  }

  /// Token arrived at (or was initiated by) `rank`, which is now idle.
  /// For rank 0 this decides whether the ring is terminated or a new round
  /// starts. Must only be called when `rank` is idle.
  Decision on_token_at_idle(std::uint32_t rank, Token token) noexcept {
    if (rank == 0) {
      // End of a round: check the termination condition.
      if (!token.black && !black_[0] && token.count + counts_[0] == 0)
        return {Action::kTerminate, token, 0};
      // Start a fresh round (fresh zero token, as in initiate()).
      black_[0] = false;
      return {Action::kForward, Token{0, false}, next_of(0)};
    }
    token.count += counts_[rank];
    if (black_[rank]) token.black = true;
    black_[rank] = false;
    return {Action::kForward, token, next_of(rank)};
  }

  std::uint32_t next_of(std::uint32_t rank) const noexcept {
    return (rank + 1) % p_;
  }

  std::uint32_t size() const noexcept { return p_; }

 private:
  std::uint32_t p_;
  std::vector<std::int64_t> counts_;
  std::vector<bool> black_;
};

}  // namespace pmpl::runtime
