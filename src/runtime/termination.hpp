#pragma once
/// \file termination.hpp
/// Safra's token-ring distributed termination detection, with ring repair.
///
/// The work-stealing phase has no global barrier: a processor that runs out
/// of regions keeps issuing steal requests, and the phase ends only when
/// every processor is idle and no messages are in flight. The DES engine
/// drives this detector exactly as an MPI implementation would: a token
/// circulates the ring; message sends/receives color processes black.
///
/// Fault tolerance: `mark_dead(rank)` splices a crashed rank out of the
/// ring. Its outstanding message balance is folded into the leader (the
/// lowest alive rank, which also takes over round initiation when rank 0
/// dies), so in-flight messages the dead rank sent still balance to zero
/// when they are delivered — the engine compensates separately (via
/// on_send_cancelled) for messages that can never be delivered. `taint`
/// lets the engine blacken a rank that absorbed recovered work, forcing a
/// fresh white round before termination can be declared.
///
/// This class is pure protocol state — the transport (the DES) decides when
/// the token physically moves and at what latency, so detection *overhead*
/// is part of the simulated schedule, as in the real system. Token loss and
/// regeneration are likewise transport concerns: the engine stamps tokens
/// with a generation and discards stale ones.

#include <cstdint>
#include <vector>

namespace pmpl::runtime {

/// Protocol logic for Safra's algorithm over ranks 0..p-1 in a ring.
class SafraTermination {
 public:
  /// The circulating token.
  struct Token {
    std::int64_t count = 0;  ///< accumulated message balance
    bool black = false;
  };

  /// What a rank should do with a just-arrived token.
  enum class Action {
    kHold,       ///< rank is busy: keep the token until idle
    kForward,    ///< pass the (returned) token to the next rank
    kTerminate,  ///< the leader confirmed global termination
  };

  struct Decision {
    Action action;
    Token token;           ///< valid when action == kForward
    std::uint32_t next;    ///< destination rank when forwarding
  };

  explicit SafraTermination(std::uint32_t p)
      : p_(p), counts_(p, 0), black_(p, false), dead_(p, false) {}

  /// The leader starts a detection round (must be idle). Returns the fresh
  /// token to forward to the next alive rank. Never declares termination —
  /// only a token that completed a full round may (see on_token_at_idle).
  Token initiate() noexcept {
    black_[leader_] = false;
    // The token starts at zero: the leader's own balance is folded in only
    // at the end-of-round check (adding it here would double-count it).
    return Token{0, false};
  }

  /// A basic (non-token) message left `rank`.
  void on_send(std::uint32_t rank) noexcept { ++counts_[rank]; }

  /// A basic message arrived at `rank`; the receiver turns black.
  void on_receive(std::uint32_t rank) noexcept {
    --counts_[rank];
    black_[rank] = true;
  }

  /// A send that can never be received (message dropped and reclaimed, or
  /// addressed to a rank that died first): undo its balance contribution.
  void on_send_cancelled(std::uint32_t rank) noexcept { --counts_[rank]; }

  /// Force `rank` black (e.g. it just absorbed recovered regions), so the
  /// current round cannot declare termination.
  void taint(std::uint32_t rank) noexcept { black_[rank] = true; }

  /// Splice a crashed rank out of the ring. Its message balance moves to
  /// the leader so already-in-flight sends still cancel on delivery; the
  /// leader role migrates to the lowest alive rank.
  void mark_dead(std::uint32_t rank) noexcept {
    if (dead_[rank]) return;
    dead_[rank] = true;
    black_[rank] = false;
    if (leader_ == rank || rank < leader_) {
      leader_ = 0;
      while (leader_ < p_ && dead_[leader_]) ++leader_;
      if (leader_ >= p_) leader_ = rank;  // everyone dead: degenerate
    }
    counts_[leader_] += counts_[rank];
    counts_[rank] = 0;
  }

  bool is_dead(std::uint32_t rank) const noexcept { return dead_[rank]; }

  /// Lowest alive rank: round head and the only rank that may declare.
  std::uint32_t leader() const noexcept { return leader_; }

  /// Token arrived at (or was initiated by) `rank`, which is now idle.
  /// For the leader this decides whether the ring is terminated or a new
  /// round starts. Must only be called when `rank` is idle and alive.
  Decision on_token_at_idle(std::uint32_t rank, Token token) noexcept {
    if (rank == leader_) {
      // End of a round: check the termination condition.
      if (!token.black && !black_[leader_] &&
          token.count + counts_[leader_] == 0)
        return {Action::kTerminate, token, leader_};
      // Start a fresh round (fresh zero token, as in initiate()).
      black_[leader_] = false;
      return {Action::kForward, Token{0, false}, next_of(leader_)};
    }
    token.count += counts_[rank];
    if (black_[rank]) token.black = true;
    black_[rank] = false;
    return {Action::kForward, token, next_of(rank)};
  }

  /// Ring successor, skipping spliced-out (dead) ranks.
  std::uint32_t next_of(std::uint32_t rank) const noexcept {
    std::uint32_t next = (rank + 1) % p_;
    while (next != rank && dead_[next]) next = (next + 1) % p_;
    return next;
  }

  std::uint32_t size() const noexcept { return p_; }

 private:
  std::uint32_t p_;
  std::vector<std::int64_t> counts_;
  std::vector<bool> black_;
  std::vector<bool> dead_;
  std::uint32_t leader_ = 0;
};

}  // namespace pmpl::runtime
