#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace pmpl::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0)
    chunk = std::max<std::size_t>(1, n / (pool.size() * 8));
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace pmpl::runtime
