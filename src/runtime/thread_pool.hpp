#pragma once
/// \file thread_pool.hpp
/// Shared-memory execution: a fixed thread pool and a parallel_for helper.
///
/// This is the "really runs in parallel" counterpart to the DES: examples
/// and the threaded work-stealing executor (loadbal/ws_threaded.hpp) use it
/// to build roadmaps with genuine concurrency on the host machine.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmpl::runtime {

/// Fixed-size pool executing submitted tasks FIFO. `wait_idle()` blocks
/// until all submitted work has finished.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Safe from any thread, including pool workers.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) across `pool`, blocking until done. Indices
/// are chunked to limit task overhead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk = 0);

}  // namespace pmpl::runtime
