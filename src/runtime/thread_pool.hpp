#pragma once
/// \file thread_pool.hpp
/// Shared-memory execution: the classic pool-shaped API, now a thin facade
/// over the lock-free work-stealing Scheduler (runtime/scheduler.hpp).
///
/// ThreadPool keeps its original contract (submit + wait_idle) for callers
/// that want a single pool-wide completion barrier; parallel_for uses a
/// per-call completion token underneath, so two concurrent parallel_for
/// calls on the same pool no longer block on each other's tasks.

#include <cstdint>
#include <functional>
#include <thread>

#include "runtime/scheduler.hpp"

namespace pmpl::runtime {

/// Fixed-size pool executing submitted tasks on the work-stealing
/// scheduler. `wait_idle()` blocks until all work submitted *through this
/// pool's submit()* has finished.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency())
      : scheduler_(threads) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return scheduler_.size(); }

  /// Enqueue a task. Safe from any thread, including pool workers (where
  /// it becomes a lock-free push onto the worker's own deque).
  void submit(std::function<void()> task) {
    scheduler_.submit(std::move(task), &all_tasks_);
  }

  /// Block until every task submitted via submit() has finished. Rethrows
  /// the first exception thrown by any of those tasks (a throwing task no
  /// longer terminates the process inside a worker).
  void wait_idle() { scheduler_.wait(all_tasks_); }

  /// The underlying scheduler, for callers that want per-wave completion
  /// tokens or targeted submission.
  Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  Scheduler scheduler_;
  TaskGroup all_tasks_;  ///< pool-wide token backing wait_idle()
};

/// Run fn(i) for i in [0, n) across `pool`, blocking until done. Indices
/// are chunked to limit task overhead. Waits on a per-call completion
/// token, not on pool-wide idleness.
inline void parallel_for(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn,
                         std::size_t chunk = 0) {
  parallel_for(pool.scheduler(), n, fn, chunk);
}

}  // namespace pmpl::runtime
