#include "runtime/topology.hpp"

#include <cmath>
#include <cstdlib>

namespace pmpl::runtime {

ProcessMesh::ProcessMesh(std::uint32_t p) : p_(p == 0 ? 1 : p) {
  // Largest divisor-free near-square: cols = ceil(sqrt(p)), rows to cover.
  cols_ = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(p_))));
  if (cols_ == 0) cols_ = 1;
  rows_ = (p_ + cols_ - 1) / cols_;
}

std::vector<std::uint32_t> ProcessMesh::neighbors(std::uint32_t rank) const {
  std::vector<std::uint32_t> out;
  out.reserve(4);
  const std::uint32_t r = row_of(rank);
  const std::uint32_t c = col_of(rank);
  auto add = [&](std::int64_t rr, std::int64_t cc) {
    if (rr < 0 || cc < 0 || rr >= rows_ || cc >= cols_) return;
    const std::uint32_t n =
        static_cast<std::uint32_t>(rr) * cols_ + static_cast<std::uint32_t>(cc);
    if (n < p_ && n != rank) out.push_back(n);
  };
  add(static_cast<std::int64_t>(r) - 1, c);
  add(static_cast<std::int64_t>(r) + 1, c);
  add(r, static_cast<std::int64_t>(c) - 1);
  add(r, static_cast<std::int64_t>(c) + 1);
  return out;
}

std::uint32_t ProcessMesh::hops(std::uint32_t a, std::uint32_t b) const noexcept {
  const auto dr = static_cast<std::int64_t>(row_of(a)) -
                  static_cast<std::int64_t>(row_of(b));
  const auto dc = static_cast<std::int64_t>(col_of(a)) -
                  static_cast<std::int64_t>(col_of(b));
  return static_cast<std::uint32_t>(std::llabs(dr) + std::llabs(dc));
}

}  // namespace pmpl::runtime
