#pragma once
/// \file topology.hpp
/// Cluster topology and communication cost model.
///
/// Models the two machines of the paper's evaluation: H OPPER (Cray XE6,
/// 24 cores/node, Gemini interconnect) and OPTERON-CLUSTER (8 cores/node,
/// InfiniBand). Only the parameters that shape strong-scaling curves are
/// modeled: cores per node (intra- vs inter-node message cost) and
/// latency/bandwidth.

#include <cstdint>
#include <string>
#include <vector>

namespace pmpl::runtime {

/// Machine description for the DES communication model.
struct ClusterSpec {
  std::string name;
  std::uint32_t cores_per_node = 1;
  double local_latency_s = 5e-7;    ///< same-node message latency
  double remote_latency_s = 2e-6;   ///< cross-node message latency
  double bandwidth_bps = 5e9;       ///< bytes/second for bulk transfers

  /// Cray XE6 "Hopper": 24 cores/node, Gemini 3D-torus-class latency.
  static ClusterSpec hopper() {
    return {"hopper", 24, 4e-7, 1.6e-6, 6e9};
  }

  /// 2,400-core Opteron/InfiniBand cluster: 8 cores/node, higher latency,
  /// lower bandwidth than the Cray.
  static ClusterSpec opteron_cluster() {
    return {"opteron-cluster", 8, 6e-7, 3.2e-6, 1.5e9};
  }

  std::uint32_t node_of(std::uint32_t rank) const noexcept {
    return rank / cores_per_node;
  }

  bool same_node(std::uint32_t a, std::uint32_t b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// One-way latency of a small control message between two ranks.
  double latency(std::uint32_t from, std::uint32_t to) const noexcept {
    return same_node(from, to) ? local_latency_s : remote_latency_s;
  }

  /// Time to move `bytes` of payload between two ranks.
  double transfer_time(std::uint32_t from, std::uint32_t to,
                       std::uint64_t bytes) const noexcept {
    return latency(from, to) +
           static_cast<double>(bytes) / bandwidth_bps;
  }
};

/// 2D process mesh over P ranks (the DIFFUSIVE steal policy's neighbor
/// structure; paper §III-A assumes processors "arranged in a 2D mesh").
class ProcessMesh {
 public:
  /// Near-square factorization rows x cols >= p; ranks are row-major and
  /// ranks >= p simply do not exist (edge processors have fewer neighbors).
  explicit ProcessMesh(std::uint32_t p);

  std::uint32_t size() const noexcept { return p_; }
  std::uint32_t rows() const noexcept { return rows_; }
  std::uint32_t cols() const noexcept { return cols_; }

  std::uint32_t row_of(std::uint32_t rank) const noexcept {
    return rank / cols_;
  }
  std::uint32_t col_of(std::uint32_t rank) const noexcept {
    return rank % cols_;
  }

  /// 4-neighborhood (N/S/E/W) of `rank`, clipped to the mesh and to p.
  std::vector<std::uint32_t> neighbors(std::uint32_t rank) const;

  /// Manhattan distance between two ranks (hop count on the mesh).
  std::uint32_t hops(std::uint32_t a, std::uint32_t b) const noexcept;

 private:
  std::uint32_t p_;
  std::uint32_t rows_;
  std::uint32_t cols_;
};

}  // namespace pmpl::runtime
