#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>

namespace pmpl::runtime {

namespace {

std::atomic<std::uint64_t> next_tracer_id{1};

thread_local struct ThreadTrackSlot {
  std::uint64_t tracer_id = 0;  ///< 0 = no cached track
  TraceBuffer* buffer = nullptr;
} tls_track;

/// JSON string escaping for track/event names (conservative: control
/// characters, quotes and backslashes; names are ASCII in practice).
void fput_json_string(const char* s, std::FILE* f) {
  std::fputc('"', f);
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\')
      std::fprintf(f, "\\%c", c);
    else if (c < 0x20)
      std::fprintf(f, "\\u%04x", c);
    else
      std::fputc(c, f);
  }
  std::fputc('"', f);
}

const char* ph_of(TraceType t) {
  switch (t) {
    case TraceType::kBegin: return "B";
    case TraceType::kEnd: return "E";
    case TraceType::kInstant: return "i";
    case TraceType::kCounter: return "C";
  }
  return "i";
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : epoch_(std::chrono::steady_clock::now()),
      options_(options),
      id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

double Tracer::now_s() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceBuffer* Tracer::thread_track(const char* name_hint) {
  if (tls_track.tracer_id == id_) return tls_track.buffer;
  std::lock_guard lock(mutex_);
  std::string name;
  if (name_hint) {
    name = name_hint;
  } else {
    name = "thread " + std::to_string(tracks_.size());
  }
  tracks_.push_back(
      std::make_unique<TraceBuffer>(std::move(name),
                                    options_.default_capacity));
  tls_track.tracer_id = id_;
  tls_track.buffer = tracks_.back().get();
  return tls_track.buffer;
}

TraceBuffer* Tracer::track(std::string name, std::size_t capacity) {
  std::lock_guard lock(mutex_);
  tracks_.push_back(std::make_unique<TraceBuffer>(
      std::move(name), capacity == 0 ? options_.default_capacity : capacity));
  return tracks_.back().get();
}

std::vector<const TraceBuffer*> Tracer::tracks() const {
  std::lock_guard lock(mutex_);
  std::vector<const TraceBuffer*> out;
  out.reserve(tracks_.size());
  for (const auto& t : tracks_) out.push_back(t.get());
  return out;
}

std::uint64_t Tracer::total_events() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t->total();
  return n;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t->dropped();
  return n;
}

void export_chrome_trace(const Tracer& tracer, std::FILE* f) {
  const auto tracks = tracer.tracks();
  std::fprintf(f, "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
  bool first = true;
  auto sep = [&] {
    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
  };
  char buf[256];
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    // Metadata event naming the track.
    sep();
    std::fprintf(f,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                 "\"tid\": %zu, \"args\": {\"name\": ",
                 tid);
    fput_json_string(tracks[tid]->track_name().c_str(), f);
    std::fprintf(f, "}}");

    // Ring drop-oldest can orphan End events (their Begin was overwritten):
    // skip Ends that would close a span the snapshot no longer contains.
    const auto events = tracks[tid]->snapshot();
    std::int64_t depth = 0;
    for (const TraceEvent& ev : events) {
      if (ev.type == TraceType::kEnd) {
        if (depth == 0) continue;  // orphaned by drop-oldest
        --depth;
      } else if (ev.type == TraceType::kBegin) {
        ++depth;
      }
      const double ts_us = ev.t * 1e6;
      sep();
      std::snprintf(buf, sizeof buf,
                    "{\"ph\": \"%s\", \"ts\": %.3f, \"pid\": 0, "
                    "\"tid\": %zu, \"name\": ",
                    ph_of(ev.type), ts_us, tid);
      std::fprintf(f, "%s", buf);
      fput_json_string(ev.name ? ev.name : "?", f);
      if (ev.type == TraceType::kInstant)
        std::fprintf(f, ", \"s\": \"t\"");
      std::fprintf(f, ", \"args\": {\"%s\": %" PRIu64 "}}",
                   ev.type == TraceType::kCounter ? "value" : "arg", ev.arg);
    }
  }
  std::fprintf(f, "\n],\n\"otherData\": {\"tracks\": [\n");
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    std::fprintf(f, "  {\"tid\": %zu, \"name\": ", tid);
    fput_json_string(tracks[tid]->track_name().c_str(), f);
    std::fprintf(f,
                 ", \"events_total\": %" PRIu64 ", \"events_dropped\": %" PRIu64
                 "}%s\n",
                 tracks[tid]->total(), tracks[tid]->dropped(),
                 tid + 1 < tracks.size() ? "," : "");
  }
  std::fprintf(f, "]}\n}\n");
}

bool export_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  export_chrome_trace(tracer, f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace pmpl::runtime
