#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>

#include "runtime/metrics_registry.hpp"
#include "util/state_file.hpp"

namespace pmpl::runtime {

namespace {

std::atomic<std::uint64_t> next_tracer_id{1};

thread_local struct ThreadTrackSlot {
  std::uint64_t tracer_id = 0;  ///< 0 = no cached track
  TraceBuffer* buffer = nullptr;
} tls_track;

/// JSON string escaping for track/event names (conservative: control
/// characters, quotes and backslashes; names are ASCII in practice).
void fput_json_string(const char* s, std::FILE* f) {
  std::fputc('"', f);
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\')
      std::fprintf(f, "\\%c", c);
    else if (c < 0x20)
      std::fprintf(f, "\\u%04x", c);
    else
      std::fputc(c, f);
  }
  std::fputc('"', f);
}

const char* ph_of(TraceType t) {
  switch (t) {
    case TraceType::kBegin: return "B";
    case TraceType::kEnd: return "E";
    case TraceType::kInstant: return "i";
    case TraceType::kCounter: return "C";
    case TraceType::kFlowStart: return "s";
    case TraceType::kFlowEnd: return "f";
  }
  return "i";
}

/// What the writer needs from one track, whatever its source (live
/// TraceBuffer snapshot or a persisted TraceSnapshot): the event `name`
/// pointers must stay valid for the duration of the write.
struct TrackView {
  const std::string* name;
  std::uint64_t total;
  std::uint64_t dropped;
  std::vector<TraceEvent> events;
};

void write_chrome_trace(const std::vector<TrackView>& tracks, std::FILE* f,
                        const std::string& extra_other_data) {
  std::fprintf(f, "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
  bool first = true;
  auto sep = [&] {
    std::fprintf(f, "%s", first ? "" : ",\n");
    first = false;
  };
  char buf[256];
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    // Metadata event naming the track.
    sep();
    std::fprintf(f,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                 "\"tid\": %zu, \"args\": {\"name\": ",
                 tid);
    fput_json_string(tracks[tid].name->c_str(), f);
    std::fprintf(f, "}}");

    // Ring drop-oldest can orphan End events (their Begin was overwritten):
    // skip Ends that would close a span the snapshot no longer contains.
    std::int64_t depth = 0;
    for (const TraceEvent& ev : tracks[tid].events) {
      if (ev.type == TraceType::kEnd) {
        if (depth == 0) continue;  // orphaned by drop-oldest
        --depth;
      } else if (ev.type == TraceType::kBegin) {
        ++depth;
      }
      const double ts_us = ev.t * 1e6;
      sep();
      std::snprintf(buf, sizeof buf,
                    "{\"ph\": \"%s\", \"ts\": %.3f, \"pid\": 0, "
                    "\"tid\": %zu, \"name\": ",
                    ph_of(ev.type), ts_us, tid);
      std::fprintf(f, "%s", buf);
      fput_json_string(ev.name ? ev.name : "?", f);
      if (ev.type == TraceType::kFlowStart || ev.type == TraceType::kFlowEnd) {
        // Flow arrows: the event name doubles as the binding category, the
        // correlation id is a hex string (ids are opaque to viewers), and
        // "bp":"e" binds the head to its enclosing slice.
        std::fprintf(f, ", \"cat\": ");
        fput_json_string(ev.name ? ev.name : "?", f);
        std::fprintf(f, ", \"id\": \"0x%" PRIx64 "\"", ev.arg);
        if (ev.type == TraceType::kFlowEnd) std::fprintf(f, ", \"bp\": \"e\"");
        std::fprintf(f, ", \"args\": {\"arg\": %" PRIu32 "}}", ev.arg2);
        continue;
      }
      if (ev.type == TraceType::kInstant)
        std::fprintf(f, ", \"s\": \"t\"");
      std::fprintf(f, ", \"args\": {\"%s\": %" PRIu64,
                   ev.type == TraceType::kCounter ? "value" : "arg", ev.arg);
      if (ev.arg2 != 0)
        std::fprintf(f, ", \"corr\": \"0x%08" PRIx32 "\"", ev.arg2);
      std::fprintf(f, "}}");
    }
  }
  std::fprintf(f, "\n],\n\"otherData\": {\"tracks\": [\n");
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    std::fprintf(f, "  {\"tid\": %zu, \"name\": ", tid);
    fput_json_string(tracks[tid].name->c_str(), f);
    std::fprintf(f,
                 ", \"events_total\": %" PRIu64 ", \"events_dropped\": %" PRIu64
                 "}%s\n",
                 tracks[tid].total, tracks[tid].dropped,
                 tid + 1 < tracks.size() ? "," : "");
  }
  std::fprintf(f, "]");
  if (!extra_other_data.empty())
    std::fprintf(f, ",\n%s", extra_other_data.c_str());
  std::fprintf(f, "}\n}\n");
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : epoch_(std::chrono::steady_clock::now()),
      options_(options),
      id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

double Tracer::now_s() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

TraceBuffer* Tracer::thread_track(const char* name_hint) {
  if (tls_track.tracer_id == id_) return tls_track.buffer;
  std::lock_guard lock(mutex_);
  std::string name;
  if (name_hint) {
    name = name_hint;
  } else {
    name = "thread " + std::to_string(tracks_.size());
  }
  tracks_.push_back(
      std::make_unique<TraceBuffer>(std::move(name),
                                    options_.default_capacity));
  tls_track.tracer_id = id_;
  tls_track.buffer = tracks_.back().get();
  return tls_track.buffer;
}

TraceBuffer* Tracer::track(std::string name, std::size_t capacity) {
  std::lock_guard lock(mutex_);
  tracks_.push_back(std::make_unique<TraceBuffer>(
      std::move(name), capacity == 0 ? options_.default_capacity : capacity));
  return tracks_.back().get();
}

std::vector<const TraceBuffer*> Tracer::tracks() const {
  std::lock_guard lock(mutex_);
  std::vector<const TraceBuffer*> out;
  out.reserve(tracks_.size());
  for (const auto& t : tracks_) out.push_back(t.get());
  return out;
}

std::uint64_t Tracer::total_events() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t->total();
  return n;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t->dropped();
  return n;
}

void export_chrome_trace(const Tracer& tracer, std::FILE* f,
                         const std::string& extra_other_data) {
  const auto tracks = tracer.tracks();
  std::vector<TrackView> views;
  views.reserve(tracks.size());
  for (const TraceBuffer* t : tracks)
    views.push_back({&t->track_name(), t->total(), t->dropped(),
                     t->snapshot()});
  write_chrome_trace(views, f, extra_other_data);
}

bool export_chrome_trace(const Tracer& tracer, const std::string& path,
                         const std::string& extra_other_data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  export_chrome_trace(tracer, f, extra_other_data);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::uint32_t TraceSnapshot::intern(const std::string& name) {
  for (std::uint32_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  names.push_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

TraceSnapshot snapshot_tracer(const Tracer& tracer) {
  TraceSnapshot snap;
  for (const TraceBuffer* t : tracer.tracks()) {
    TraceSnapshot::Track track;
    track.name = t->track_name();
    track.total = t->total();
    track.dropped = t->dropped();
    for (const TraceEvent& ev : t->snapshot()) {
      TraceSnapshot::Event e;
      e.t = ev.t;
      e.arg = ev.arg;
      e.name_ix = snap.intern(ev.name ? ev.name : "?");
      e.arg2 = ev.arg2;
      e.type = ev.type;
      track.events.push_back(e);
    }
    snap.tracks.push_back(std::move(track));
  }
  return snap;
}

bool export_chrome_trace(const TraceSnapshot& snap, const std::string& path,
                         const std::string& extra_other_data) {
  // Rebuild TraceEvent views whose name pointers alias the interned
  // strings; `snap` outlives the write, so the pointers stay valid.
  std::vector<TrackView> views;
  views.reserve(snap.tracks.size());
  static const std::string kUnknown = "?";
  for (const TraceSnapshot::Track& t : snap.tracks) {
    TrackView v{&t.name, t.total, t.dropped, {}};
    v.events.reserve(t.events.size());
    for (const TraceSnapshot::Event& e : t.events) {
      TraceEvent ev;
      ev.t = e.t;
      ev.name = e.name_ix < snap.names.size() ? snap.names[e.name_ix].c_str()
                                              : kUnknown.c_str();
      ev.arg = e.arg;
      ev.arg2 = e.arg2;
      ev.type = e.type;
      v.events.push_back(ev);
    }
    views.push_back(std::move(v));
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_chrome_trace(views, f, extra_other_data);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

namespace {

void put_string(std::vector<char>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

bool take_string(StateReader& r, std::string& out, std::uint32_t max_len) {
  const std::uint32_t n = r.u32();
  if (!r.ok || n > max_len || r.left < n) {
    r.ok = false;
    return false;
  }
  out.assign(r.p, n);
  r.p += n;
  r.left -= n;
  return true;
}

constexpr std::uint32_t kMaxSnapshotNames = 1u << 16;
constexpr std::uint32_t kMaxSnapshotTracks = 1u << 12;
constexpr std::uint64_t kMaxSnapshotEvents = 1u << 22;
constexpr std::uint32_t kMaxSnapshotString = 1u << 12;

}  // namespace

bool save_trace_snapshot(const TraceSnapshot& snap, const std::string& path) {
  StateBlob b;
  b.kind = kStateKindTraceRing;
  b.meta0 = snap.rank;
  b.meta1 = snap.generation;
  auto& p = b.payload;
  put_u32(p, static_cast<std::uint32_t>(snap.names.size()));
  for (const std::string& n : snap.names) put_string(p, n);
  put_u32(p, static_cast<std::uint32_t>(snap.tracks.size()));
  for (const TraceSnapshot::Track& t : snap.tracks) {
    put_string(p, t.name);
    put_u64(p, t.total);
    put_u64(p, t.dropped);
    put_u64(p, t.events.size());
    for (const TraceSnapshot::Event& e : t.events) {
      put_f64(p, e.t);
      put_u64(p, e.arg);
      put_u32(p, e.name_ix);
      put_u32(p, e.arg2);
      put_u32(p, static_cast<std::uint32_t>(e.type));
    }
  }
  return save_state_file(b, path);
}

std::optional<TraceSnapshot> load_trace_snapshot(const std::string& path,
                                                 IoStatus* status) {
  auto blob = load_state_file(path, status);
  if (!blob) return std::nullopt;
  auto fail = [&]() -> std::optional<TraceSnapshot> {
    if (status) *status = IoStatus::kMalformed;
    return std::nullopt;
  };
  if (blob->kind != kStateKindTraceRing) return fail();
  StateReader r{blob->payload.data(), blob->payload.size()};
  TraceSnapshot snap;
  snap.rank = blob->meta0;
  snap.generation = blob->meta1;
  const std::uint32_t name_count = r.u32();
  if (!r.ok || name_count > kMaxSnapshotNames)
    return fail();
  snap.names.resize(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i)
    if (!take_string(r, snap.names[i], kMaxSnapshotString))
      return fail();
  const std::uint32_t track_count = r.u32();
  if (!r.ok || track_count > kMaxSnapshotTracks)
    return fail();
  snap.tracks.resize(track_count);
  for (std::uint32_t i = 0; i < track_count; ++i) {
    TraceSnapshot::Track& t = snap.tracks[i];
    if (!take_string(r, t.name, kMaxSnapshotString))
      return fail();
    t.total = r.u64();
    t.dropped = r.u64();
    const std::uint64_t n = r.u64();
    if (!r.ok || n > kMaxSnapshotEvents || n * 28 > r.left)
      return fail();
    t.events.resize(static_cast<std::size_t>(n));
    for (std::uint64_t j = 0; j < n; ++j) {
      TraceSnapshot::Event& e = t.events[j];
      e.t = r.f64();
      e.arg = r.u64();
      e.name_ix = r.u32();
      e.arg2 = r.u32();
      const std::uint32_t type = r.u32();
      if (!r.ok || type > static_cast<std::uint32_t>(TraceType::kFlowEnd) ||
          e.name_ix >= name_count)
        return fail();
      e.type = static_cast<TraceType>(type);
    }
  }
  if (r.left != 0) return fail();
  return snap;
}

void publish_trace_metrics(MetricsRegistry& registry, const Tracer& tracer,
                           const std::string& prefix) {
  std::uint64_t total = 0, dropped = 0;
  const auto tracks = tracer.tracks();
  for (const TraceBuffer* t : tracks) {
    total += t->total();
    dropped += t->dropped();
    const std::uint64_t retained =
        std::min<std::uint64_t>(t->total(), t->capacity());
    registry.set(prefix + "hwm/" + t->track_name(),
                 static_cast<double>(retained));
  }
  registry.add(prefix + "events_total", total);
  registry.add(prefix + "events_dropped", dropped);
  registry.set(prefix + "tracks", static_cast<double>(tracks.size()));
}

}  // namespace pmpl::runtime
