#pragma once
/// \file trace.hpp
/// Low-overhead tracing substrate: per-track fixed-capacity ring buffers of
/// 32-byte trace events plus a Chrome-trace-event exporter.
///
/// Design constraints (DESIGN.md §5e):
///  - Allocation-free on the hot path: a track's ring is sized once at
///    creation; emitting overwrites the oldest retained event when full and
///    counts the drop, so steady-state overhead is bounded regardless of
///    run length.
///  - Single-writer per track: a worker thread owns its thread track, and
///    the (single-threaded) DES owns its virtual-time rank tracks, so the
///    emit path needs no locks or CAS loops — one release store publishes
///    each event. The Tracer's registry mutex is touched only at track
///    creation.
///  - Disabled means absent: every instrumentation site is gated on a
///    `Tracer*` that defaults to nullptr. Tracing never draws randomness,
///    never schedules DES events, and never changes control flow, so an
///    untraced run is bit-identical to a build without the subsystem.
///
/// Timestamps are plain `double` seconds. Thread tracks stamp wall time
/// against the Tracer's epoch (Tracer::now_s); DES tracks stamp *virtual*
/// time (Simulator::now), so a simulated cluster run exports a real Gantt
/// chart. The exporter writes Chrome trace-event JSON loadable in Perfetto
/// or chrome://tracing: one track ("thread") per TraceBuffer, span
/// begin/end pairs, instant events and counter samples.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/io_status.hpp"

namespace pmpl::runtime {

class MetricsRegistry;

enum class TraceType : std::uint8_t {
  kBegin = 0,      ///< span start ("B")
  kEnd = 1,        ///< span end ("E")
  kInstant = 2,    ///< point event ("i")
  kCounter = 3,    ///< counter sample ("C"); arg is the sampled value
  kFlowStart = 4,  ///< flow arrow tail ("s"); arg is the correlation id
  kFlowEnd = 5,    ///< flow arrow head ("f"); arg is the correlation id
};

/// Pack a (source rank, generation, sequence) triple into the 32-bit
/// correlation id used by flow events and `corr` args. 6 bits of rank
/// (ranks are capped at 64), 6 bits of generation, 20 bits of sequence;
/// generation and sequence wrap, which can alias arrows only after 2^20
/// frames from one incarnation — harmless for visualization, and distinct
/// flow categories ("frame"/"steal"/"grant"/"exec") never match each other.
/// Zero is reserved for "no correlation" (the exporter omits args.corr
/// for it), so the one packing that collapses to 0 — rank 0, generation
/// 0 mod 64, sequence 0 mod 2^20 — maps to the all-ones sentinel instead;
/// both endpoints compute the same value, so flow pairing still holds.
constexpr std::uint32_t trace_corr(std::uint32_t src, std::uint32_t generation,
                                   std::uint64_t seq) noexcept {
  const std::uint32_t c = ((src & 0x3fu) << 26) | ((generation & 0x3fu) << 20) |
                          static_cast<std::uint32_t>(seq & 0xfffffu);
  return c != 0 ? c : 0xffffffffu;
}

/// One trace record. `name` must point at a string with static storage
/// duration (the buffer stores the pointer, never a copy). 32 bytes so a
/// default track costs 8192 * 32 B = 256 KiB and an event write is one
/// cache line touch. `arg2` rides in what used to be padding: flow events
/// carry their correlation id in `arg` and an auxiliary value (peer rank)
/// in `arg2`; other event types may carry a correlation id in `arg2`,
/// exported as a `corr` arg when nonzero.
struct TraceEvent {
  double t = 0.0;              ///< seconds (wall-since-epoch or virtual)
  const char* name = nullptr;  ///< static string, not owned
  std::uint64_t arg = 0;       ///< payload: region id, victim rank, value…
  TraceType type = TraceType::kInstant;
  std::uint8_t pad_[3] = {};   ///< explicit padding (keeps the 32 B claim)
  std::uint32_t arg2 = 0;      ///< aux payload / 32-bit correlation id
};
static_assert(sizeof(TraceEvent) == 32, "trace events are 32 bytes");

/// Fixed-capacity single-writer ring of trace events, drop-oldest.
///
/// Thread-safety contract: exactly one thread calls the emit methods of a
/// given buffer; any thread may call total()/dropped() concurrently (they
/// read one atomic). snapshot() and the exporter additionally require the
/// writer to be quiescent (threads joined / DES drained) to see a
/// consistent ring — the usual collect-at-end discipline.
class TraceBuffer {
 public:
  TraceBuffer(std::string track_name, std::size_t capacity)
      : ring_(capacity == 0 ? 1 : capacity), name_(std::move(track_name)) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Emit one event at explicit time `t` (virtual-time tracks).
  void emit_at(TraceType type, const char* name, double t,
               std::uint64_t arg = 0, std::uint32_t arg2 = 0) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    TraceEvent& slot = ring_[static_cast<std::size_t>(h % ring_.size())];
    slot.t = t;
    slot.name = name;
    slot.arg = arg;
    slot.type = type;
    slot.arg2 = arg2;
    head_.store(h + 1, std::memory_order_release);
  }

  void begin_at(const char* name, double t, std::uint64_t arg = 0) noexcept {
    emit_at(TraceType::kBegin, name, t, arg);
  }
  void end_at(const char* name, double t, std::uint64_t arg = 0) noexcept {
    emit_at(TraceType::kEnd, name, t, arg);
  }
  void instant_at(const char* name, double t, std::uint64_t arg = 0,
                  std::uint32_t corr = 0) noexcept {
    emit_at(TraceType::kInstant, name, t, arg, corr);
  }
  void counter_at(const char* name, double t, std::uint64_t value) noexcept {
    emit_at(TraceType::kCounter, name, t, value);
  }
  /// Flow arrow tail/head. `name` doubles as the flow category in the
  /// export (arrows only bind within a category), `corr` is the 32-bit
  /// correlation id (see trace_corr) and `aux` the peer rank or similar.
  void flow_start_at(const char* name, double t, std::uint32_t corr,
                     std::uint32_t aux = 0) noexcept {
    emit_at(TraceType::kFlowStart, name, t, corr, aux);
  }
  void flow_end_at(const char* name, double t, std::uint32_t corr,
                   std::uint32_t aux = 0) noexcept {
    emit_at(TraceType::kFlowEnd, name, t, corr, aux);
  }

  const std::string& track_name() const noexcept { return name_; }
  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Events ever emitted on this track.
  std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Events overwritten because the ring was full (exact: total - retained).
  std::uint64_t dropped() const noexcept {
    const std::uint64_t t = total();
    const std::uint64_t cap = ring_.size();
    return t > cap ? t - cap : 0;
  }

  /// Retained events, oldest first. Writer must be quiescent.
  std::vector<TraceEvent> snapshot() const {
    const std::uint64_t t = total();
    const std::uint64_t cap = ring_.size();
    const std::uint64_t n = t < cap ? t : cap;
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = t - n; i < t; ++i)
      out.push_back(ring_[static_cast<std::size_t>(i % cap)]);
    return out;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> head_{0};  ///< total emitted; next slot h%cap
  std::string name_;
};

struct TracerOptions {
  /// Ring capacity (events) for thread tracks and for virtual tracks
  /// created without an explicit capacity.
  std::size_t default_capacity = 1 << 13;
};

/// Process-level registry of trace tracks. Instrumentation sites hold a
/// `Tracer*` (nullptr = tracing off) and ask it for tracks:
///  - thread_track(): one lazily-created track per calling thread, stamped
///    with wall time (now_s);
///  - track(name): an explicitly named virtual track (DES ranks, phase
///    timelines), stamped by the caller with whatever clock it owns.
/// Track creation takes a mutex; emitting never does.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Wall seconds since this tracer was constructed (the trace epoch).
  double now_s() const noexcept;

  /// The calling thread's track, created on first use. `name_hint` names
  /// the track at creation (later calls ignore it); defaults to
  /// "thread <n>" in registration order.
  TraceBuffer* thread_track(const char* name_hint = nullptr);

  /// Create a named virtual track. Names need not be unique; each call
  /// creates a fresh track. `capacity` 0 uses the default.
  TraceBuffer* track(std::string name, std::size_t capacity = 0);

  /// All tracks in creation order. Writers must be quiescent before the
  /// returned buffers are snapshot.
  std::vector<const TraceBuffer*> tracks() const;

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> tracks_;
  const std::chrono::steady_clock::time_point epoch_;
  TracerOptions options_;
  /// Process-unique id. The per-thread track cache is keyed on this, not
  /// on the Tracer's address: a stack-allocated tracer destroyed and
  /// replaced by another at the same address must not satisfy a stale
  /// cache entry with a dangling buffer.
  const std::uint64_t id_;
};

/// RAII wall-time span on a thread track: begin at construction, end at
/// destruction. A null buffer (tracing off) makes both no-ops.
class TraceSpan {
 public:
  TraceSpan(const Tracer* tracer, TraceBuffer* buf, const char* name,
            std::uint64_t arg = 0) noexcept
      : tracer_(tracer), buf_(buf), name_(name) {
    if (buf_) buf_->begin_at(name_, tracer_->now_s(), arg);
  }
  ~TraceSpan() {
    if (buf_) buf_->end_at(name_, tracer_->now_s());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const Tracer* tracer_;
  TraceBuffer* buf_;
  const char* name_;
};

/// Write Chrome trace-event JSON (the format Perfetto and chrome://tracing
/// load): one "thread" per track, `ts` in microseconds, span begin/end
/// ("B"/"E"), instants ("i"), counters ("C"), flow arrows ("s"/"f" with a
/// hex `id` and the event name as `cat`) and per-track metadata ("M")
/// naming the tracks. End events orphaned by ring drop-oldest (their Begin
/// was overwritten) are skipped so the output is always well-formed; spans
/// left open by a crash are closed by the viewer at trace end.
/// `otherData` records per-track total/dropped counts; `extra_other_data`,
/// when non-empty, must be one or more raw JSON members ("\"k\": {...}")
/// appended verbatim into `otherData` (the clock metadata trace_merge
/// aligns on). Writers must be quiescent. Returns false when the file
/// cannot be written.
bool export_chrome_trace(const Tracer& tracer, const std::string& path,
                         const std::string& extra_other_data = {});
void export_chrome_trace(const Tracer& tracer, std::FILE* f,
                         const std::string& extra_other_data = {});

/// Owning, serializable copy of a Tracer's retained contents — the unit
/// the flight recorder persists and the supervisor salvages. Event names
/// are interned in `names` (TraceEvent stores only static pointers; a
/// snapshot must own its strings to survive a round-trip through disk).
struct TraceSnapshot {
  struct Event {
    double t = 0.0;
    std::uint64_t arg = 0;
    std::uint32_t name_ix = 0;  ///< index into TraceSnapshot::names
    std::uint32_t arg2 = 0;
    TraceType type = TraceType::kInstant;
  };
  struct Track {
    std::string name;
    std::uint64_t total = 0;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
  };
  std::vector<std::string> names;  ///< interned event names
  std::vector<Track> tracks;
  std::uint32_t rank = 0;        ///< owning rank (flight-recorder meta)
  std::uint32_t generation = 0;  ///< owning incarnation

  /// Intern `name`, returning its index.
  std::uint32_t intern(const std::string& name);
};

/// Copy every track's retained events out of `tracer`. Writers must be
/// quiescent (same contract as the exporter).
TraceSnapshot snapshot_tracer(const Tracer& tracer);

/// Persist / recover a snapshot through the util/state_file atomic
/// checksummed container (kind kStateKindTraceRing): a crash mid-write
/// leaves the previous fragment intact, and truncated or bit-flipped
/// fragments are rejected on load, never misread.
bool save_trace_snapshot(const TraceSnapshot& snap, const std::string& path);
std::optional<TraceSnapshot> load_trace_snapshot(const std::string& path,
                                                 IoStatus* status = nullptr);

/// Export a snapshot as the same Chrome trace JSON the live exporter
/// writes (how a salvaged flight-recorder fragment becomes mergeable).
bool export_chrome_trace(const TraceSnapshot& snap, const std::string& path,
                         const std::string& extra_other_data = {});

/// Publish the tracer's aggregate event/drop counts plus per-track
/// high-water marks (retained events, i.e. min(total, capacity)) into a
/// metrics registry: counters `<prefix>events_total` /
/// `<prefix>events_dropped`, gauges `<prefix>tracks` and
/// `<prefix>hwm/<track name>`. One-shot at collection time — calling twice
/// double-counts the counters.
void publish_trace_metrics(MetricsRegistry& registry, const Tracer& tracer,
                           const std::string& prefix = "trace/");

}  // namespace pmpl::runtime
