#include "runtime/trace_merge.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace pmpl::runtime {

using pmpl::json::Value;

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  char buf[64];
  // Integral values print without an exponent or trailing ".0" so counts
  // and correlation args survive a round-trip textually unchanged.
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      d >= -9.2e18 && d <= 9.2e18)
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  else
    std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

/// Serialize a parsed JSON subtree (used for the `args` objects carried
/// through the merge verbatim).
void dump(const Value& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out += ", ";
      first = false;
      dump(e, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out += ", ";
      first = false;
      dump_string(k, out);
      out += ": ";
      dump(e, out);
    }
    out += '}';
  }
}

/// One event of the merged timeline: everything but ts/pid/tid is copied
/// verbatim from the source event it aliases.
struct MergedEvent {
  double ts = 0.0;
  std::uint32_t pid = 0;
  std::size_t tid = 0;
  std::size_t order = 0;  ///< input arrival order (stable-sort tiebreak)
  const Value* src = nullptr;
};

/// A track of the merged timeline (fresh global tid = index).
struct MergedTrack {
  std::uint32_t pid = 0;
  std::string name;
  double total = 0.0;
  double dropped = 0.0;
};

}  // namespace

TraceFileMeta read_cluster_clock(const Value& root,
                                 std::uint32_t fallback_rank) {
  TraceFileMeta meta;
  meta.rank = fallback_rank;
  const Value* other = root.find("otherData");
  const Value* clock = other ? other->find("clusterClock") : nullptr;
  if (!clock || !clock->is_object()) return meta;
  meta.clock_present = true;
  if (const Value* v = clock->find("rank"); v && v->is_number())
    meta.rank = static_cast<std::uint32_t>(v->as_number());
  if (const Value* v = clock->find("generation"); v && v->is_number())
    meta.generation = static_cast<std::uint32_t>(v->as_number());
  if (const Value* v = clock->find("salvaged"); v && v->is_bool())
    meta.salvaged = v->as_bool();
  if (const Value* v = clock->find("epochSteadyS"); v && v->is_number())
    meta.epoch_steady_s = v->as_number();
  if (const Value* v = clock->find("offsets"); v && v->is_array())
    for (const Value& o : v->as_array())
      meta.offsets.push_back(o.is_number()
                                 ? std::optional<double>(o.as_number())
                                 : std::nullopt);
  return meta;
}

MergeResult merge_traces(const std::vector<MergeInput>& inputs) {
  MergeResult out;
  if (inputs.empty()) {
    out.error = "no inputs";
    return out;
  }
  std::vector<TraceFileMeta> metas;
  std::vector<MergedTrack> tracks;
  std::vector<MergedEvent> events;
  std::string provenance;  // otherData.merged.inputs entries

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Value& root = inputs[i].root;
    if (!root.is_object()) {
      out.error = inputs[i].label + ": root is not an object";
      return out;
    }
    const Value* evs = root.find("traceEvents");
    if (!evs || !evs->is_array()) {
      out.error = inputs[i].label + ": missing traceEvents array";
      return out;
    }
    const TraceFileMeta meta =
        read_cluster_clock(root, static_cast<std::uint32_t>(i));
    // Shift onto rank 0's clock: the writer's offset to rank 0 says how
    // far rank 0's clock runs ahead, so adding it maps local time onto
    // the reference timeline. Rank 0 itself — and any file that never
    // measured (accept-side only, or no clusterClock) — shifts by 0.
    double shift_s = 0.0;
    if (meta.rank != 0 && !meta.offsets.empty() && meta.offsets[0])
      shift_s = *meta.offsets[0];
    const double shift_us = shift_s * 1e6;
    out.shift_us.push_back(shift_us);

    // Fresh global tids for this file's tracks, in otherData order (which
    // matches the local tid numbering the exporter uses).
    const std::size_t tid_base = tracks.size();
    std::size_t local_tracks = 0;
    if (const Value* other = root.find("otherData"))
      if (const Value* tr = other->find("tracks"); tr && tr->is_array())
        for (const Value& t : tr->as_array()) {
          MergedTrack mt;
          mt.pid = meta.rank;
          if (const Value* n = t.find("name"); n && n->is_string())
            mt.name = n->as_string();
          if (meta.generation > 0)
            mt.name += " (g" + std::to_string(meta.generation) + ")";
          if (const Value* n = t.find("events_total"); n && n->is_number())
            mt.total = n->as_number();
          if (const Value* n = t.find("events_dropped"); n && n->is_number())
            mt.dropped = n->as_number();
          tracks.push_back(std::move(mt));
          ++local_tracks;
        }

    for (const Value& ev : evs->as_array()) {
      if (!ev.is_object()) continue;
      const Value* ph = ev.find("ph");
      if (!ph || !ph->is_string()) continue;
      if (ph->as_string() == "M") continue;  // re-emitted from the tracks
      const Value* ts = ev.find("ts");
      const Value* tid = ev.find("tid");
      if (!ts || !ts->is_number() || !tid || !tid->is_number()) continue;
      MergedEvent me;
      me.ts = ts->as_number() + shift_us;
      me.pid = meta.rank;
      const auto local = static_cast<std::size_t>(tid->as_number());
      if (local >= local_tracks) continue;  // tid outside declared tracks
      me.tid = tid_base + local;
      me.order = events.size();
      me.src = &ev;
      events.push_back(me);
    }

    provenance += std::string(i ? ",\n  " : "  ") + "{\"label\": ";
    dump_string(inputs[i].label, provenance);
    provenance += ", \"rank\": " + std::to_string(meta.rank) +
                  ", \"generation\": " + std::to_string(meta.generation) +
                  ", \"salvaged\": " + (meta.salvaged ? "true" : "false") +
                  ", \"shift_us\": ";
    dump_number(shift_us, provenance);
    provenance += "}";
    metas.push_back(meta);
  }

  // Clamp: alignment can push the earliest events negative (a writer
  // whose clock ran ahead of rank 0's); slide the whole timeline right.
  double min_ts = 0.0;
  for (const MergedEvent& e : events) min_ts = std::min(min_ts, e.ts);
  if (min_ts < 0.0)
    for (MergedEvent& e : events) e.ts -= min_ts;

  std::sort(events.begin(), events.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.order < b.order;
            });

  std::string& j = out.json;
  j.reserve(events.size() * 96 + 4096);
  j += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) j += ",\n";
    first = false;
  };
  // Metadata: one process per rank, one named thread per merged track.
  std::map<std::uint32_t, bool> pid_named;
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    if (!pid_named[tracks[t].pid]) {
      pid_named[tracks[t].pid] = true;
      sep();
      j += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(tracks[t].pid) +
           ", \"tid\": 0, \"args\": {\"name\": \"rank " +
           std::to_string(tracks[t].pid) + "\"}}";
    }
    sep();
    j += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " +
         std::to_string(tracks[t].pid) + ", \"tid\": " + std::to_string(t) +
         ", \"args\": {\"name\": ";
    dump_string(tracks[t].name, j);
    j += "}}";
  }
  for (const MergedEvent& e : events) {
    sep();
    const auto& o = e.src->as_object();
    j += "{\"ph\": ";
    dump(o.at("ph"), j);
    j += ", \"ts\": ";
    dump_number(e.ts, j);
    j += ", \"pid\": " + std::to_string(e.pid) +
         ", \"tid\": " + std::to_string(e.tid);
    // Everything else rides through verbatim (name, flow cat/id/bp,
    // instant scope, args) — the merge only rewrites time and identity.
    for (const char* key : {"name", "cat", "id", "bp", "s", "args"}) {
      const auto it = o.find(key);
      if (it == o.end()) continue;
      j += ", \"";
      j += key;
      j += "\": ";
      dump(it->second, j);
    }
    j += "}";
  }
  j += "\n],\n\"otherData\": {\"tracks\": [\n";
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    j += "  {\"tid\": " + std::to_string(t) + ", \"name\": ";
    dump_string(tracks[t].name, j);
    j += ", \"pid\": " + std::to_string(tracks[t].pid) +
         ", \"events_total\": ";
    dump_number(tracks[t].total, j);
    j += ", \"events_dropped\": ";
    dump_number(tracks[t].dropped, j);
    j += t + 1 < tracks.size() ? "},\n" : "}\n";
  }
  j += "],\n\"merged\": {\"inputs\": [\n" + provenance + "\n]}}\n}\n";
  out.ok = true;
  return out;
}

}  // namespace pmpl::runtime
