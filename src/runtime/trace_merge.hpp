#pragma once
/// \file trace_merge.hpp
/// Merge per-rank per-generation Chrome trace files into one cluster-wide
/// timeline (the library behind tools/trace_merge).
///
/// Each input is a file written by export_chrome_trace — a live rank
/// export or a supervisor-salvaged flight-recorder fragment — whose
/// `otherData.clusterClock` member carries the writer's identity (rank,
/// generation) and its hello-round-trip clock-offset estimates
/// (transport.hpp estimate_clock_offset). The merge:
///  - aligns every file onto rank 0's clock by shifting its timestamps by
///    the writer's measured offset to rank 0 (offset = how far rank 0's
///    clock runs ahead, so t_aligned = t_local + offset; rank 0 and files
///    without an estimate shift by 0), then clamps the whole timeline so
///    the earliest event lands at ts >= 0;
///  - rewrites pids to the writer's rank and hands every track a fresh
///    global tid, so one Perfetto process group per rank with its
///    incarnations' tracks side by side (a generation > 0 track is
///    renamed "<name> (g<gen>)" — restarted timelines stay separate);
///  - passes flow events through untouched, so steal/grant/frame arrows
///    bind across rank tracks in the merged view;
///  - records per-input provenance (label, rank, generation, salvaged,
///    applied shift) under `otherData.merged`.
/// Events are emitted in ascending aligned-timestamp order.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json_mini.hpp"

namespace pmpl::runtime {

/// The `otherData.clusterClock` member of one trace file.
struct TraceFileMeta {
  std::uint32_t rank = 0;
  std::uint32_t generation = 0;
  bool salvaged = false;       ///< exported post-mortem by the supervisor
  bool clock_present = false;  ///< file carried a clusterClock member
  double epoch_steady_s = 0.0;
  /// Seconds the peer's clock runs ahead of this writer's; nullopt = this
  /// writer never dialed that peer (only dialers measure).
  std::vector<std::optional<double>> offsets;
};

/// Parse `otherData.clusterClock`; absent or malformed members degrade to
/// the defaults (rank = fallback_rank, no offsets) rather than failing —
/// a merge of schema-less inputs is still a usable single timeline.
TraceFileMeta read_cluster_clock(const pmpl::json::Value& root,
                                 std::uint32_t fallback_rank = 0);

struct MergeInput {
  std::string label;      ///< provenance recorded in otherData (file path)
  pmpl::json::Value root; ///< the parsed trace document
};

struct MergeResult {
  bool ok = false;
  std::string error;             ///< first structural failure when !ok
  std::string json;              ///< the merged trace document
  std::vector<double> shift_us;  ///< per-input timestamp shift applied
};

MergeResult merge_traces(const std::vector<MergeInput>& inputs);

}  // namespace pmpl::runtime
