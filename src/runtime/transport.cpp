#include "runtime/transport.hpp"

#include "runtime/metrics_registry.hpp"

namespace pmpl::runtime {

namespace {

// Fixed-size scalar section of a payload: type byte, from, to, gen, a, b,
// c, trace seq, item count. Scalars are encoded little-endian by memcpy —
// every target this repo builds for is little-endian, and the codec is
// symmetric, so same-host clusters (the only deployment) round-trip
// regardless. (The seq field grew this section from 41 to 49 bytes; both
// halves of a cluster always run the same build, so there is no
// mixed-version wire concern.)
constexpr std::size_t kScalarBytes = 1 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4;

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof v);
  std::memcpy(out.data() + at, &v, sizeof v);
}

template <typename T>
T get(const std::uint8_t* data, std::size_t& at) noexcept {
  T v;
  std::memcpy(&v, data + at, sizeof v);
  at += sizeof v;
  return v;
}

}  // namespace

std::size_t frame_payload_size(const Frame& f) noexcept {
  return kScalarBytes + 4 * f.items.size();
}

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  put(out, static_cast<std::uint32_t>(frame_payload_size(f)));
  put(out, static_cast<std::uint8_t>(f.type));
  put(out, f.from);
  put(out, f.to);
  put(out, f.gen);
  put(out, f.a);
  put(out, f.b);
  put(out, f.c);
  put(out, f.seq);
  put(out, static_cast<std::uint32_t>(f.items.size()));
  for (std::uint32_t item : f.items) put(out, item);
}

bool decode_frame_payload(const std::uint8_t* data, std::size_t n,
                          Frame& out) noexcept {
  if (n < kScalarBytes) return false;
  std::size_t at = 0;
  const auto type = get<std::uint8_t>(data, at);
  if (type > static_cast<std::uint8_t>(FrameType::kEpochFence)) return false;
  out.type = static_cast<FrameType>(type);
  out.from = get<std::uint32_t>(data, at);
  out.to = get<std::uint32_t>(data, at);
  out.gen = get<std::uint32_t>(data, at);
  out.a = get<std::uint64_t>(data, at);
  out.b = get<std::uint64_t>(data, at);
  out.c = get<std::uint64_t>(data, at);
  out.seq = get<std::uint64_t>(data, at);
  const auto count = get<std::uint32_t>(data, at);
  if (count > kMaxFrameItems) return false;
  if (n != kScalarBytes + 4ull * count) return false;
  out.items.resize(count);
  for (auto& item : out.items) item = get<std::uint32_t>(data, at);
  return true;
}

void publish(MetricsRegistry& reg, const TransportMetrics& m,
             const std::string& prefix) {
  reg.counter(prefix + "frames_sent").add(m.frames_sent);
  reg.counter(prefix + "frames_received").add(m.frames_received);
  reg.counter(prefix + "frames_dropped").add(m.frames_dropped);
  reg.counter(prefix + "frames_delayed").add(m.frames_delayed);
  reg.counter(prefix + "bytes_sent").add(m.bytes_sent);
  reg.counter(prefix + "bytes_received").add(m.bytes_received);
  reg.counter(prefix + "reconnects").add(m.reconnects);
  reg.counter(prefix + "connect_retries").add(m.connect_retries);
  reg.counter(prefix + "send_timeouts").add(m.send_timeouts);
  reg.counter(prefix + "frames_stale").add(m.frames_stale);
}

FrameFaults::Fate FrameFaults::on_frame(std::uint32_t from, std::uint32_t to,
                                        std::uint64_t seq, double t,
                                        bool is_token) const noexcept {
  Fate fate;
  if (plan_.empty()) return fate;
  // One uniform roll per fault channel, derived from the identity of the
  // arrival: same plan + same arrival index => same fate, independent of
  // wall-clock jitter or what other links are doing.
  const auto roll = [&](std::uint64_t salt) {
    std::uint64_t key[4] = {plan_.seed ^ salt,
                            (std::uint64_t(from) << 32) | to, seq, salt};
    const std::uint64_t h = fnv1a64(key, sizeof key);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };
  // Partition cuts are absolute while open — no roll, so both halves of a
  // link agree on the cut without sharing randomness.
  for (const PartitionFault& cut : plan_.partitions)
    if (t >= cut.from_s && t < cut.until_s && cut.separates(from, to)) {
      fate.dropped = true;
      return fate;
    }
  if (is_token) {
    for (std::size_t i = 0; i < plan_.tokens.size(); ++i) {
      const TokenFault& tf = plan_.tokens[i];
      if (t < tf.from_s || t >= tf.until_s) continue;
      if (roll(0x70cull + i) < tf.drop_prob) {
        fate.dropped = true;
        return fate;
      }
    }
  }
  for (std::size_t i = 0; i < plan_.links.size(); ++i) {
    const LinkFault& lf = plan_.links[i];
    if (lf.from != kAnyRank && lf.from != from) continue;
    if (lf.to != kAnyRank && lf.to != to) continue;
    if (t < lf.from_s || t >= lf.until_s) continue;
    if (lf.drop_prob > 0.0 && roll(0x11ull + i) < lf.drop_prob) {
      fate.dropped = true;
      return fate;
    }
    fate.extra_delay_s += lf.extra_delay_s;
  }
  return fate;
}

}  // namespace pmpl::runtime
