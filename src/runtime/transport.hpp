#pragma once
/// \file transport.hpp
/// The transport concept behind the work-stealing protocol (DESIGN.md §5h).
///
/// The protocol in loadbal/ is written against five operations — `rank`,
/// `size`, `now`, `send`, `recv` — and nothing else. Two families satisfy
/// them:
///
///  - the DES (runtime/transport_des.hpp): `now` is virtual time, `send`
///    prices the hop against a ClusterSpec and rolls the FaultInjector,
///    `recv` is inverted control (the simulator invokes the delivery
///    callback). Used by the god-view engine in loadbal/ws_engine.cpp.
///  - real transports (runtime/transport_socket.hpp over Unix-domain
///    sockets, runtime/transport_mem.hpp over in-process mailboxes) that
///    move the `Frame` wire format below between genuinely concurrent
///    ranks. Used by the per-rank engine in loadbal/ws_rank.cpp.
///
/// The Frame codec is length-prefixed and bounds-checked: a frame on the
/// wire is a little-endian u32 payload length followed by the payload, and
/// decode rejects truncated, oversized or type-garbled payloads instead of
/// trusting the peer. Link faults on real transports are evaluated
/// receiver-side by FrameFaults, a deterministic re-hash of the FaultPlan
/// (no shared RNG stream exists across processes).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "util/io_status.hpp"

namespace pmpl::runtime {

/// Protocol message kinds carried by real transports. Values are wire
/// format: renumbering breaks mixed-build clusters, so append only.
enum class FrameType : std::uint8_t {
  kHello = 0,         ///< connection handshake; a = sender's rank
  kStealRequest = 1,  ///< a = request id
  kDeny = 2,          ///< a = request id being denied
  kGrant = 3,         ///< a = grant id, b = request id, items = region ids
  kGrantAck = 4,      ///< a = grant id being acknowledged
  kHbProbe = 5,       ///< a = probe sequence number
  kHbAck = 6,         ///< a = probe sequence number echoed
  kToken = 7,         ///< a = count (two's complement), b = black, c = gen
  kDeathNotice = 8,   ///< a = the rank declared dead
  kOwnerUpdate = 9,   ///< b = new owner, items = region ids re-homed
  kRegionDone = 10,   ///< a = completed region id
  kTerminate = 11,    ///< leader-declared global termination
  kRejoin = 12,       ///< a = rejoiner's generation; items = its done set
  kDirSync = 13,      ///< a = echoed rejoin gen, b = 1 if the responder is
                      ///<   itself rejoining; items = done / claimed /
                      ///<   yours ids (see kDirSync*Bit below)
  kEpochFence = 14,   ///< a = current generation of `to`; a receiver whose
                      ///<   own generation is older must exit (superseded)
};

/// One protocol message. `a`/`b`/`c` are type-dependent scalar payloads
/// (documented per FrameType above); `items` carries region-id lists for
/// grants and ownership updates. `gen` is the sender incarnation's
/// generation number — the epoch fence: peers drop frames whose gen is
/// older than the newest they have seen from that rank, which is what
/// neutralizes a zombie (paused, superseded, then resumed) rank.
struct Frame {
  FrameType type = FrameType::kHello;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t gen = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  /// Per-transmission trace sequence number, stamped by the sending
  /// transport (1, 2, …; 0 = untraced handshake frame). Together with
  /// (from, gen) it forms the wire-level trace id behind the paired
  /// frame_send/frame_recv events and their flow arrows; retransmissions
  /// get fresh seqs because each physical transmission is its own arrow.
  /// Not part of the protocol: engines ignore it.
  std::uint64_t seq = 0;
  std::vector<std::uint32_t> items;

  bool operator==(const Frame&) const = default;
};

/// Bit tags on kDirSync items (untagged entries are completed ids).
/// Region ids stay far below both bits in every workload this repo
/// generates, and the codec's kMaxFrameItems keeps item lists bounded.
///  - kDirSyncClaimBit: "pending region currently claimed by the
///    responder" — the rejoiner must not execute it.
///  - kDirSyncYoursBit: "pending region my directory credits to *you*" —
///    lets a rejoiner whose checkpoint was lost re-adopt regions that
///    were granted to its previous incarnation.
inline constexpr std::uint32_t kDirSyncClaimBit = 0x80000000u;
inline constexpr std::uint32_t kDirSyncYoursBit = 0x40000000u;

/// Hard cap on `items` accepted off the wire — far above any real grant
/// (steal_max_items is single digits; ownership updates carry one crashed
/// rank's queue) but small enough that a garbled length cannot drive an
/// allocation bomb.
inline constexpr std::uint32_t kMaxFrameItems = 1u << 20;

/// Encoded payload size of `f` (excludes the u32 length prefix).
std::size_t frame_payload_size(const Frame& f) noexcept;

/// Append the length-prefixed encoding of `f` to `out`.
void encode_frame(const Frame& f, std::vector<std::uint8_t>& out);

/// Decode one payload (the bytes after a length prefix) of exactly `n`
/// bytes. Returns false — leaving `out` unspecified — on any malformation:
/// short/overlong payload, unknown type, or an items count exceeding
/// kMaxFrameItems or the actual bytes present.
bool decode_frame_payload(const std::uint8_t* data, std::size_t n,
                          Frame& out) noexcept;

/// What a real transport measures about itself. Protocol-level health
/// (heartbeat misses, grant retransmits) is counted by the engine on top;
/// this is the frame layer only.
struct TransportMetrics {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_dropped = 0;   ///< injected drops + undeliverable sends
  std::uint64_t frames_delayed = 0;   ///< injected extra-delay holds
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;       ///< re-established peer connections
  std::uint64_t connect_retries = 0;  ///< backoff rounds during setup
  std::uint64_t send_timeouts = 0;    ///< sends abandoned at the deadline
  std::uint64_t frames_stale = 0;     ///< frames refused: stale generation
};

class MetricsRegistry;

/// Publish every TransportMetrics field into `reg` as "<prefix><field>"
/// counters (same idiom as publish(FaultMetrics)).
void publish(MetricsRegistry& reg, const TransportMetrics& m,
             const std::string& prefix);

/// NTP-style clock-offset estimate from one hello round trip: the dialer
/// sends its clock reading `t0`, the acceptor replies with its own reading
/// `t1` (echoing t0), and the dialer receives the reply at `t2`. Under
/// symmetric path delay the peer's clock reads `t1` at local midpoint
/// (t0+t2)/2, so the returned value is how far the *peer's* clock is ahead
/// of the local one; the error is bounded by half the round-trip time.
/// Mapping a peer timestamp into local time is then `t_local = t_peer -
/// offset`.
constexpr double estimate_clock_offset(double t0, double t1,
                                       double t2) noexcept {
  return t1 - 0.5 * (t0 + t2);
}

/// A real point-to-point transport among ranks 0..size-1. Implementations:
/// SocketTransport (processes over Unix-domain sockets), MemTransport
/// (threads over mailboxes). The engine owns exactly one and is the only
/// caller — implementations need not be reentrant.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t rank() const noexcept = 0;
  virtual std::uint32_t size() const noexcept = 0;

  /// Seconds since the cluster epoch (shared across ranks as precisely as
  /// the launcher can arrange; fault-plan windows are cut against this).
  virtual double now() const = 0;

  /// Queue `f` to `to`. Returns false when the frame is known undelivered
  /// (peer unreachable and the reconnect budget is spent, or the send
  /// timed out); true means handed to the peer's kernel/mailbox, which is
  /// not an acknowledgement of processing.
  virtual bool send(std::uint32_t to, const Frame& f) = 0;

  /// Dequeue the next frame into `out`, waiting up to `timeout_s`.
  /// Returns false on timeout. Injected link faults are applied here:
  /// dropped frames never surface, delayed frames surface late.
  virtual bool recv(Frame& out, double timeout_s) = 0;

  /// Frames accepted from peers but not yet returned by recv — including
  /// frames parked in the injected-delay queue. The engine must not treat
  /// itself as quiescent (forward a termination token) while this is
  /// nonzero: a delayed grant from a since-dead sender is still "in
  /// flight" here and nowhere else.
  virtual std::size_t pending() const = 0;

  virtual const TransportMetrics& metrics() const noexcept = 0;
};

/// Receiver-side link-fault evaluation for real transports. Fate rolls are
/// a pure hash of (plan seed, from, to, per-peer arrival index) via FNV-1a,
/// so a rank's drop pattern is reproducible run-to-run without any cross-
/// process RNG stream. Windows are cut against transport `now` — the
/// launcher pre-scales plan times to wall seconds.
class FrameFaults {
 public:
  FrameFaults() = default;
  explicit FrameFaults(const FaultPlan& plan) : plan_(plan) {}

  struct Fate {
    bool dropped = false;
    double extra_delay_s = 0.0;
  };

  /// Fate of the `seq`-th frame received from `from` at `to`, arriving at
  /// time `t`. Tokens additionally roll the plan's token faults.
  Fate on_frame(std::uint32_t from, std::uint32_t to, std::uint64_t seq,
                double t, bool is_token) const noexcept;

  bool active() const noexcept { return !plan_.empty(); }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace pmpl::runtime
