#pragma once
/// \file transport_des.hpp
/// The discrete-event-simulation implementation of the transport concept
/// (DESIGN.md §5h; see runtime/transport.hpp for the concept itself).
///
/// A DES has no blocking recv: delivery is inverted control, so `send`
/// takes the handler to run at the delivery instant. Everything a hop
/// costs or risks is priced here — ClusterSpec latency/bandwidth for the
/// delay, FaultInjector rolls for drops and stretches — and nowhere else,
/// which is what lets loadbal/ws_engine.cpp stay pure protocol.
///
/// Bit-identity contract: for any call sequence, this class issues exactly
/// the Simulator::schedule_* calls and FaultInjector RNG draws, in exactly
/// the order, that the pre-seam engine issued inline. Determinism ties
/// break on insertion order, so even one extra scheduled event would
/// perturb every seeded replay; tests pin the engine's counters against
/// pre-seam goldens.

#include <cstdint>

#include "runtime/des.hpp"
#include "runtime/fault.hpp"
#include "runtime/topology.hpp"

namespace pmpl::runtime {

/// Virtual-time transport among ranks 0..p-1. Not a `Transport` subclass —
/// the real interface is pull (blocking recv), the DES is push (delivery
/// callbacks) — but it carries the same five operations, with `recv`
/// appearing as the callback argument of each send.
class DesTransport {
 public:
  /// `metrics` is the caller's fault tally (drops and delays are counted
  /// where they are rolled, so the caller cannot forget).
  DesTransport(Simulator& sim, const ClusterSpec& cluster,
               FaultInjector& inject, FaultMetrics& metrics,
               std::uint32_t p) noexcept
      : sim_(sim), cluster_(cluster), inject_(inject), metrics_(metrics),
        p_(p) {}

  std::uint32_t size() const noexcept { return p_; }
  double now() const noexcept { return sim_.now(); }
  Simulator& simulator() noexcept { return sim_; }

  /// Control-plane hop (requests, denies, acks, heartbeats): pays
  /// point-to-point latency. Returns false when the injector dropped the
  /// frame — the drop is already counted; the caller owns the fallout
  /// (timeout arming, drop trace).
  bool send_control(std::uint32_t from, std::uint32_t to,
                    Simulator::Callback on_deliver) {
    return dispatch(from, to, cluster_.latency(from, to),
                    std::move(on_deliver));
  }

  /// Work-bearing hop (grants): pays the payload transfer time.
  bool send_bulk(std::uint32_t from, std::uint32_t to, std::uint64_t bytes,
                 Simulator::Callback on_deliver) {
    return dispatch(from, to, cluster_.transfer_time(from, to, bytes),
                    std::move(on_deliver));
  }

  /// Termination-token hop: rolls the plan's token faults instead of the
  /// basic-message channel. A dropped token is counted in tokens_lost and
  /// the hop-by-hop retry is the caller's move.
  bool send_token(std::uint32_t from, std::uint32_t to,
                  Simulator::Callback on_deliver) {
    double delay = cluster_.latency(from, to);
    if (inject_.active()) {
      const auto fate = inject_.on_token(from, to, sim_.now());
      if (fate.dropped) {
        ++metrics_.tokens_lost;
        return false;
      }
      delay += fate.extra_delay_s;
    }
    sim_.schedule_in(delay, std::move(on_deliver));
    return true;
  }

 private:
  bool dispatch(std::uint32_t from, std::uint32_t to, double base_delay,
                Simulator::Callback on_deliver) {
    if (!inject_.active()) {
      sim_.schedule_in(base_delay, std::move(on_deliver));
      return true;
    }
    const auto fate = inject_.on_message(from, to, sim_.now());
    if (fate.dropped) {
      ++metrics_.messages_dropped;
      return false;
    }
    if (fate.extra_delay_s > 0.0) ++metrics_.messages_delayed;
    sim_.schedule_in(base_delay + fate.extra_delay_s, std::move(on_deliver));
    return true;
  }

  Simulator& sim_;
  const ClusterSpec& cluster_;
  FaultInjector& inject_;
  FaultMetrics& metrics_;
  std::uint32_t p_;
};

}  // namespace pmpl::runtime
