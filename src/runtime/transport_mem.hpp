#pragma once
/// \file transport_mem.hpp
/// In-process implementation of the Transport interface: p ranks as
/// threads, mailboxes as mutex+condvar deques.
///
/// Exists so the per-rank protocol engine (loadbal/ws_rank.cpp) can be
/// unit-tested — and run under TSan — without forking processes or
/// touching the filesystem. Semantics match SocketTransport: delivery is
/// in send order per peer pair, injected link faults are evaluated
/// receiver-side by FrameFaults (same hash, so a plan behaves alike on
/// both), and `pending` counts delay-parked frames.

#include <condition_variable>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "runtime/transport.hpp"

namespace pmpl::runtime {

/// Shared mailboxes for p ranks in one process. Create the cluster, hand
/// `endpoint(r)` to thread r, join the threads before destruction.
class MemCluster {
 public:
  explicit MemCluster(std::uint32_t p, FaultPlan faults = {})
      : epoch_(std::chrono::steady_clock::now()) {
    ranks_.reserve(p);
    for (std::uint32_t r = 0; r < p; ++r)
      ranks_.push_back(std::make_unique<Endpoint>(*this, r, p, faults));
  }

  Transport& endpoint(std::uint32_t r) { return *ranks_[r]; }

  double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  /// A frame parked by an injected extra-delay link fault.
  struct Delayed {
    double due_s = 0.0;
    std::uint64_t seq = 0;  ///< arrival order tiebreak
    Frame frame;
    bool operator>(const Delayed& o) const noexcept {
      return due_s != o.due_s ? due_s > o.due_s : seq > o.seq;
    }
  };

  class Endpoint final : public Transport {
   public:
    Endpoint(MemCluster& cluster, std::uint32_t rank, std::uint32_t p,
             const FaultPlan& faults)
        : cluster_(cluster), rank_(rank), p_(p), faults_(faults),
          recv_seq_(p, 0) {}

    std::uint32_t rank() const noexcept override { return rank_; }
    std::uint32_t size() const noexcept override { return p_; }
    double now() const override { return cluster_.now(); }

    bool send(std::uint32_t to, const Frame& f) override {
      if (to >= p_ || to == rank_) return false;
      Frame stamped = f;  // wire trace id, same stamping as SocketTransport
      {
        std::lock_guard lock(mutex_);
        ++metrics_.frames_sent;
        metrics_.bytes_sent += frame_payload_size(f) + 4;
        stamped.seq = ++send_seq_;
      }
      return cluster_.ranks_[to]->deposit(stamped);
    }

    bool recv(Frame& out, double timeout_s) override {
      std::unique_lock lock(mutex_);
      const auto start = std::chrono::steady_clock::now();
      for (;;) {
        release_due(cluster_.now());
        if (!ready_.empty()) {
          out = std::move(ready_.front());
          ready_.pop_front();
          ++metrics_.frames_received;
          metrics_.bytes_received += frame_payload_size(out) + 4;
          return true;
        }
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        double wait_s = timeout_s - elapsed;
        if (wait_s <= 0.0) return false;
        if (!delayed_.empty())
          wait_s = std::min(wait_s,
                            std::max(0.0, delayed_.top().due_s -
                                              cluster_.now()) +
                                1e-4);
        cv_.wait_for(lock, std::chrono::duration<double>(wait_s));
      }
    }

    std::size_t pending() const override {
      std::lock_guard lock(mutex_);
      return ready_.size() + delayed_.size();
    }

    const TransportMetrics& metrics() const noexcept override {
      return metrics_;
    }

   private:
    /// Called by the *sender's* thread: receiver-side fate, receiver's
    /// mailbox, receiver's metrics — all under the receiver's lock.
    bool deposit(const Frame& f) {
      std::lock_guard lock(mutex_);
      const double t = cluster_.now();
      const auto fate = faults_.on_frame(f.from, rank_, recv_seq_[f.from]++,
                                         t, f.type == FrameType::kToken);
      if (fate.dropped) {
        ++metrics_.frames_dropped;
        return true;  // "delivered" as far as the sender can tell
      }
      if (fate.extra_delay_s > 0.0) {
        ++metrics_.frames_delayed;
        delayed_.push({t + fate.extra_delay_s, delay_seq_++, f});
      } else {
        ready_.push_back(f);
      }
      cv_.notify_one();
      return true;
    }

    /// Move due delayed frames to the ready queue. Caller holds the lock.
    void release_due(double t) {
      while (!delayed_.empty() && delayed_.top().due_s <= t) {
        ready_.push_back(std::move(const_cast<Delayed&>(delayed_.top()).frame));
        delayed_.pop();
      }
    }

    MemCluster& cluster_;
    const std::uint32_t rank_;
    const std::uint32_t p_;
    const FrameFaults faults_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Frame> ready_;
    std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>>
        delayed_;
    std::vector<std::uint64_t> recv_seq_;  ///< arrivals per sender
    std::uint64_t delay_seq_ = 0;
    std::uint64_t send_seq_ = 0;  ///< wire trace ids (Frame::seq)
    TransportMetrics metrics_;
  };

  std::vector<std::unique_ptr<Endpoint>> ranks_;
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace pmpl::runtime
