#include "runtime/transport_socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace pmpl::runtime {

namespace {

double steady_seconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Largest payload the codec can legally produce; a length prefix beyond
/// this is a protocol violation, not a big frame.
constexpr std::size_t kMaxPayload = 64 + 4ull * kMaxFrameItems;

int make_socket() {
  return socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

// Clock readings ride the unused b/c scalars of kHello frames, bit-cast
// so no precision is lost on the wire.
std::uint64_t pack_time(double t) noexcept {
  std::uint64_t v;
  std::memcpy(&v, &t, sizeof v);
  return v;
}
double unpack_time(std::uint64_t v) noexcept {
  double t;
  std::memcpy(&t, &v, sizeof t);
  return t;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)),
      peers_(config_.size),
      peer_gen_(config_.size, 0),
      faults_(config_.faults),
      clock_offset_(config_.size, 0.0),
      clock_known_(config_.size, 0) {
  epoch_steady_s_ = config_.epoch_steady_s > 0.0 ? config_.epoch_steady_s
                                                 : steady_seconds();
  for (auto& p : peers_) p.redials_left = config_.reconnect_budget;
  if (config_.tracer)
    trace_ = config_.tracer->track(
        config_.track_name.empty()
            ? "transport rank " + std::to_string(config_.rank)
            : config_.track_name,
        config_.trace_capacity);
}

SocketTransport::~SocketTransport() { close(); }

double SocketTransport::now() const {
  return steady_seconds() - epoch_steady_s_;
}

std::string SocketTransport::sock_path(std::uint32_t r) const {
  return config_.dir + "/r" + std::to_string(r) + ".sock";
}

void SocketTransport::trace_instant(const char* name, std::uint64_t arg) {
  if (trace_) trace_->instant_at(name, now(), arg);
}

bool SocketTransport::start(std::string* error) {
  // Bind and listen first so peers that start earlier can already queue
  // their connect in our backlog while we are still dialing.
  listen_fd_ = make_socket();
  if (listen_fd_ < 0) {
    if (error) *error = "socket(): " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = sock_path(config_.rank);
  if (path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd_, static_cast<int>(config_.size) + 1) != 0) {
    if (error)
      *error = "bind/listen " + path + ": " + std::strerror(errno);
    return false;
  }
  set_nonblocking(listen_fd_);

  // A restarted incarnation announces itself at startup: rank_restart on
  // the transport track (arg = generation) so traces show the resurrection.
  if (config_.generation > 0) trace_instant("rank_restart", config_.generation);

  bool all_ok = true;
  std::string first_err;
  const std::uint32_t dial_upto =
      config_.dial_all ? config_.size : config_.rank;
  // A rejoiner (dial_all) gets a fast per-peer budget: a live peer's
  // listener accepts instantly (it never closes while the peer runs), so
  // a connect that needs longer than this is a dead peer — and spending
  // the full connect budget on each corpse serializes into minutes when
  // the rejoiner revives into a mesh that already finished and exited
  // (the supervisor's watchdog is the only thing that would end that).
  // A peer that binds late (e.g. a sibling replacement mid-fork) is
  // recovered by the send-path redial, which rejoiners may aim at anyone.
  const double per_peer_budget =
      config_.dial_all ? std::min(config_.connect_timeout_s, 0.25)
                       : config_.connect_timeout_s;
  for (std::uint32_t peer = 0; peer < dial_upto; ++peer) {
    if (peer == config_.rank) continue;
    if (!dial(peer, per_peer_budget)) {
      // When dialing everyone (a rejoin), an unreachable peer is not a
      // startup failure — it may simply be dead, which the protocol layer
      // already survives.
      if (config_.dial_all) continue;
      all_ok = false;
      if (first_err.empty())
        first_err = "rank " + std::to_string(config_.rank) +
                    ": peer " + std::to_string(peer) +
                    " unreachable after " +
                    std::to_string(config_.connect_timeout_s) + "s";
    }
  }

  // Accept until every higher rank has introduced itself (or the budget
  // runs out — a rank that died during startup shows up as missing here
  // and as dead to the heartbeat detector later). Rejoiners dialed those
  // peers above, so any still-unconnected one is dead: skip the wait.
  const double deadline =
      now() + (config_.dial_all ? 0.0 : config_.accept_timeout_s);
  auto missing = [&] {
    for (std::uint32_t r = config_.rank + 1; r < config_.size; ++r)
      if (peers_[r].fd < 0) return true;
    return false;
  };
  while (missing() && now() < deadline) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    std::vector<pollfd> set{pfd};
    for (const Peer& u : unidentified_)
      set.push_back({u.fd, POLLIN, 0});
    const double wait = std::min(0.05, deadline - now());
    poll(set.data(), set.size(),
         std::max(1, static_cast<int>(wait * 1e3)));
    accept_new();
    identify_pending();
  }
  if (missing() && !config_.dial_all) {
    all_ok = false;
    if (first_err.empty()) {
      first_err = "rank " + std::to_string(config_.rank) +
                  ": higher ranks never connected:";
      for (std::uint32_t r = config_.rank + 1; r < config_.size; ++r)
        if (peers_[r].fd < 0) first_err += " " + std::to_string(r);
    }
  }
  if (!all_ok && error) *error = first_err;
  return all_ok;
}

bool SocketTransport::dial(std::uint32_t peer, double budget_s) {
  const double deadline = now() + budget_s;
  double backoff = config_.connect_backoff_initial_s;
  const std::string path = sock_path(peer);
  for (;;) {
    const int fd = make_socket();
    if (fd >= 0) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
      if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        // Introduce ourselves before anything else travels. The hello
        // carries our generation — the peer refuses it if it has already
        // heard from a newer incarnation of this rank — and our clock
        // reading (b): the peer echoes it in its hello reply alongside its
        // own reading, giving us an RTT-midpoint clock-offset estimate
        // that is refreshed by every reconnect handshake.
        Frame hello;
        hello.type = FrameType::kHello;
        hello.from = config_.rank;
        hello.to = peer;
        hello.gen = config_.generation;
        hello.a = config_.generation;
        hello.b = pack_time(now());
        std::vector<std::uint8_t> wire;
        encode_frame(hello, wire);
        std::size_t off = 0;
        while (off < wire.size()) {
          // MSG_NOSIGNAL: a peer dying mid-handshake must surface as
          // EPIPE, not kill this process with SIGPIPE.
          const ssize_t n = ::send(fd, wire.data() + off, wire.size() - off,
                                   MSG_NOSIGNAL);
          if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
          break;
        }
        if (off == wire.size()) {
          set_nonblocking(fd);
          adopt_fd(peer, fd, /*count_reconnect=*/false);
          return true;
        }
      }
      ::close(fd);
    }
    if (now() >= deadline) return false;
    ++metrics_.connect_retries;
    timespec ts;
    const double nap = std::min(backoff, std::max(0.0, deadline - now()));
    ts.tv_sec = static_cast<time_t>(nap);
    ts.tv_nsec = static_cast<long>((nap - static_cast<double>(ts.tv_sec)) *
                                   1e9);
    nanosleep(&ts, nullptr);
    backoff = std::min(backoff * 2.0, config_.connect_backoff_max_s);
  }
}

void SocketTransport::adopt_fd(std::uint32_t peer, int fd,
                               bool count_reconnect) {
  // Salvage anything the displaced connection already delivered before
  // closing it — same rule as the EOF path in pump(): delivered bytes are
  // readable until the fd is closed, and may carry a death notice or
  // completion this rank must not miss.
  pump(peer);
  drop_connection(peer);
  peers_[peer].fd = fd;
  if (count_reconnect) {
    ++metrics_.reconnects;
    trace_instant("reconnect", peer);
  }
}

void SocketTransport::drop_connection(std::uint32_t peer) {
  Peer& p = peers_[peer];
  if (p.fd >= 0) ::close(p.fd);
  p.fd = -1;
  p.inbuf.clear();
}

bool SocketTransport::send(std::uint32_t to, const Frame& f) {
  if (to >= config_.size || to == config_.rank) return false;
  // Stamp the wire trace id: each physical transmission gets a fresh seq
  // (a retransmitted grant is a new arrow), and (from, gen, seq) pairs the
  // receiver's frame_recv with this exact frame_send across process trace
  // files.
  Frame stamped = f;
  stamped.seq = ++send_seq_;
  std::vector<std::uint8_t> wire;
  encode_frame(stamped, wire);
  const double deadline = now() + config_.send_timeout_s;
  bool redialed = false;
  for (;;) {
    Peer& p = peers_[to];
    if (p.fd < 0) {
      // Accept-side peers (higher ranks) must re-dial us; connect-side
      // peers we may re-dial within the budget. Rejoiners may re-dial
      // anyone (their higher peers' budgets may be spent on the corpse).
      if ((to < config_.rank || config_.dial_all) && p.redials_left > 0 &&
          !redialed) {
        --p.redials_left;
        redialed = true;
        // Fast-fail budget: a live peer's listener accepts instantly (it
        // never closes), so a redial that needs longer than this is a
        // dead peer — and blocking here longer would silence our own
        // heartbeat acks enough to get *us* fenced.
        if (dial(to, std::min(0.02, config_.send_timeout_s / 2.0))) {
          ++metrics_.reconnects;
          trace_instant("reconnect", to);
          continue;
        }
      }
      ++metrics_.frames_dropped;
      trace_instant("frame_drop", to);
      return false;
    }
    std::size_t off = 0;
    bool dead = false;
    while (off < wire.size()) {
      // MSG_NOSIGNAL: EPIPE instead of a process-killing SIGPIPE when the
      // peer is gone — dead peers are a state this transport must survive.
      const ssize_t n = ::send(p.fd, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && errno == EAGAIN) {
        const double wait = deadline - now();
        if (wait <= 0.0) {
          ++metrics_.send_timeouts;
          ++metrics_.frames_dropped;
          trace_instant("frame_drop", to);
          // A half-written frame would desync the stream: kill it — but
          // salvage delivered inbound frames first (see below).
          if (off > 0) {
            pump(to);
            drop_connection(to);
          }
          return false;
        }
        pollfd pfd{p.fd, POLLOUT, 0};
        poll(&pfd, 1, std::max(1, static_cast<int>(wait * 1e3)));
        continue;
      }
      dead = true;  // EPIPE / ECONNRESET / ...
      break;
    }
    if (!dead) {
      ++metrics_.frames_sent;
      metrics_.bytes_sent += wire.size();
      if (trace_) {
        const double t = now();
        const std::uint32_t corr =
            trace_corr(config_.rank, config_.generation, stamped.seq);
        trace_->instant_at("frame_send", t, to, corr);
        trace_->flow_start_at("frame", t, corr, to);
      }
      return true;
    }
    // The peer closed on us — but frames it wrote before exiting are
    // still sitting in our receive buffer, readable until the fd is
    // closed. Decode them before tearing down (mirroring the EOF path in
    // pump()): a resumed zombie whose first post-resume act is a send
    // would otherwise destroy the very death notice that must fence it.
    pump(to);
    drop_connection(to);
  }
}

void SocketTransport::accept_new() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    Peer p;
    p.fd = fd;
    unidentified_.push_back(std::move(p));
  }
}

void SocketTransport::identify_pending() {
  for (std::size_t i = 0; i < unidentified_.size();) {
    const int fd = unidentified_[i].fd;
    std::uint8_t buf[512];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      auto& inbuf = unidentified_[i].inbuf;
      inbuf.insert(inbuf.end(), buf, buf + n);
      if (inbuf.size() >= 4) {
        std::uint32_t len;
        std::memcpy(&len, inbuf.data(), 4);
        if (len <= kMaxPayload && inbuf.size() >= 4 + len) {
          Frame hello;
          if (decode_frame_payload(inbuf.data() + 4, len, hello) &&
              hello.type == FrameType::kHello && hello.from < config_.size &&
              hello.from != config_.rank) {
            if (hello.gen < peer_gen_[hello.from]) {
              // Stale incarnation (a resumed zombie re-dialing after its
              // replacement already introduced itself): refuse the
              // connection, but first tell it — best effort — that it
              // has been superseded so it can exit instead of spinning.
              ++metrics_.frames_stale;
              trace_instant("frame_drop", hello.from);
              Frame fence;
              fence.type = FrameType::kEpochFence;
              fence.from = config_.rank;
              fence.to = hello.from;
              fence.gen = config_.generation;
              fence.a = peer_gen_[hello.from];
              std::vector<std::uint8_t> wire;
              encode_frame(fence, wire);
              (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
              ::close(fd);
              unidentified_.erase(unidentified_.begin() +
                                  static_cast<std::ptrdiff_t>(i));
              continue;
            }
            peer_gen_[hello.from] =
                std::max(peer_gen_[hello.from], hello.gen);
            Peer moved = std::move(unidentified_[i]);
            moved.inbuf.erase(moved.inbuf.begin(),
                              moved.inbuf.begin() + 4 + len);
            unidentified_.erase(unidentified_.begin() +
                                static_cast<std::ptrdiff_t>(i));
            const std::uint32_t from = hello.from;
            const bool replacing = peers_[from].fd >= 0;
            drop_connection(from);
            peers_[from].fd = moved.fd;
            peers_[from].inbuf = std::move(moved.inbuf);
            if (replacing) {
              ++metrics_.reconnects;
              trace_instant("reconnect", from);
            }
            // Answer the handshake: our clock reading plus the dialer's
            // echoed back, closing its RTT-midpoint offset estimate.
            // Best effort and uncounted, like the hello itself — a lost
            // reply only costs the peer a clock sample.
            {
              Frame reply;
              reply.type = FrameType::kHello;
              reply.from = config_.rank;
              reply.to = from;
              reply.gen = config_.generation;
              reply.a = config_.generation;
              reply.b = pack_time(now());
              reply.c = hello.b;
              std::vector<std::uint8_t> wire;
              encode_frame(reply, wire);
              (void)::send(peers_[from].fd, wire.data(), wire.size(),
                           MSG_NOSIGNAL);
            }
            // Bytes that followed the hello in the same read are real
            // frames from this peer: decode them now.
            pump(from);
            continue;
          }
          // Garbled handshake: refuse the connection.
          ::close(fd);
          unidentified_.erase(unidentified_.begin() +
                              static_cast<std::ptrdiff_t>(i));
          continue;
        }
      }
    } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
      ::close(fd);
      unidentified_.erase(unidentified_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

void SocketTransport::ingest(std::uint32_t peer, Frame frame) {
  const bool is_token = frame.type == FrameType::kToken;
  const double t = now();
  const auto fate =
      faults_.on_frame(peer, config_.rank, peers_[peer].recv_seq++, t,
                       is_token);
  if (fate.dropped) {
    ++metrics_.frames_dropped;
    trace_instant("frame_drop", peer);
    return;
  }
  if (fate.extra_delay_s > 0.0) {
    ++metrics_.frames_delayed;
    delayed_.push({t + fate.extra_delay_s, delay_seq_++, std::move(frame)});
    return;
  }
  ready_.push_back(std::move(frame));
}

bool SocketTransport::pump(std::uint32_t peer) {
  Peer& p = peers_[peer];
  if (p.fd < 0) return false;
  std::uint8_t buf[16384];
  bool dead = false;
  for (;;) {
    const ssize_t n = ::read(p.fd, buf, sizeof buf);
    if (n > 0) {
      p.inbuf.insert(p.inbuf.end(), buf, buf + n);
      metrics_.bytes_received += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno == EAGAIN) break;
    // EOF or hard error: the peer is gone — but frames already buffered
    // are still decoded below (a SIGKILLed sender's last writes are
    // readable), so the connection is torn down only afterwards.
    dead = true;
    break;
  }
  // Extract complete frames.
  std::size_t at = 0;
  auto& inbuf = p.inbuf;
  while (inbuf.size() - at >= 4) {
    std::uint32_t len;
    std::memcpy(&len, inbuf.data() + at, 4);
    if (len > kMaxPayload) {
      // Stream desync or hostile peer: abandon the connection.
      ++metrics_.frames_dropped;
      trace_instant("frame_drop", peer);
      drop_connection(peer);
      return false;
    }
    if (inbuf.size() - at < 4ull + len) break;
    Frame frame;
    if (!decode_frame_payload(inbuf.data() + at + 4, len, frame)) {
      ++metrics_.frames_dropped;
      trace_instant("frame_drop", peer);
      drop_connection(peer);
      return false;
    }
    at += 4ull + len;
    if (frame.type == FrameType::kHello) {  // handshake traffic
      peer_gen_[peer] = std::max(peer_gen_[peer], frame.gen);
      if (frame.c != 0) {
        // Hello reply: b is the peer's clock reading, c our own echoed
        // back — the three timestamps of one NTP-style round trip.
        const double offset = estimate_clock_offset(
            unpack_time(frame.c), unpack_time(frame.b), now());
        clock_offset_[peer] = offset;
        clock_known_[peer] = 1;
        trace_instant("clock_sync", peer);
      }
      continue;
    }
    ++metrics_.frames_received;
    if (trace_) {
      const double t = now();
      const std::uint32_t corr =
          frame.seq != 0 ? trace_corr(frame.from, frame.gen, frame.seq) : 0;
      trace_->instant_at("frame_recv", t, peer, corr);
      if (corr != 0) trace_->flow_end_at("frame", t, corr, peer);
    }
    ingest(peer, std::move(frame));
  }
  if (at > 0)
    inbuf.erase(inbuf.begin(), inbuf.begin() + static_cast<std::ptrdiff_t>(at));
  if (dead) drop_connection(peer);
  return p.fd >= 0;
}

void SocketTransport::release_due() {
  const double t = now();
  while (!delayed_.empty() && delayed_.top().due_s <= t) {
    ready_.push_back(std::move(const_cast<Delayed&>(delayed_.top()).frame));
    delayed_.pop();
  }
}

bool SocketTransport::recv(Frame& out, double timeout_s) {
  const double deadline = now() + timeout_s;
  bool polled_once = false;
  for (;;) {
    release_due();
    if (!ready_.empty()) {
      out = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }
    const double remaining = deadline - now();
    // timeout 0 still gets one non-blocking poll pass (the engine drains
    // arrivals between execution slices this way).
    if (polled_once && remaining <= 0.0) return false;
    double wait = std::max(0.0, remaining);
    if (!delayed_.empty())
      wait = std::min(wait,
                      std::max(0.0, delayed_.top().due_s - now()) + 1e-4);

    std::vector<pollfd> set;
    set.push_back({listen_fd_, POLLIN, 0});
    std::vector<std::uint32_t> who;  // peer rank per pollfd after [0]
    for (std::uint32_t r = 0; r < config_.size; ++r)
      if (peers_[r].fd >= 0) {
        set.push_back({peers_[r].fd, POLLIN, 0});
        who.push_back(r);
      }
    for (const Peer& u : unidentified_) set.push_back({u.fd, POLLIN, 0});

    // Sub-millisecond waits round up to 1 ms (poll granularity) so short
    // delay windows cannot degenerate into a busy spin.
    const int wait_ms =
        remaining <= 0.0 ? 0 : std::max(1, static_cast<int>(wait * 1e3));
    const int rc = poll(set.data(), set.size(), wait_ms);
    polled_once = true;
    if (rc > 0) {
      if (set[0].revents & POLLIN) accept_new();
      for (std::size_t i = 0; i < who.size(); ++i)
        if (set[1 + i].revents & (POLLIN | POLLHUP | POLLERR))
          pump(who[i]);
      // Hellos on freshly accepted fds (reconnects mid-run).
      identify_pending();
    }
  }
}

std::size_t SocketTransport::pending() const {
  return ready_.size() + delayed_.size();
}

void SocketTransport::close() {
  for (std::uint32_t r = 0; r < config_.size; ++r) drop_connection(r);
  for (Peer& u : unidentified_)
    if (u.fd >= 0) ::close(u.fd);
  unidentified_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(sock_path(config_.rank).c_str());
  }
}

}  // namespace pmpl::runtime
