#pragma once
/// \file transport_socket.hpp
/// Real multi-process transport over Unix-domain stream sockets.
///
/// Each rank binds `<dir>/r<rank>.sock`, connects to every lower rank
/// (retrying with capped exponential backoff while peers are still
/// starting) and accepts from every higher rank; a kHello frame on each
/// fresh connection identifies the peer. Frames travel length-prefixed
/// (runtime/transport.hpp codec) and are reassembled from per-peer byte
/// buffers, so short reads and coalesced writes are both fine.
///
/// Failure envelope: sends poll for writability up to a deadline; a send
/// into a broken pipe closes the connection and — on the connect side,
/// within a per-peer reconnect budget — re-dials once before giving up.
/// A frame that cannot be handed to the kernel is reported undelivered
/// (`send` returns false) and counted dropped; the protocol layer treats
/// that like any lost message. SIGKILLed peers look like EOF/EPIPE here
/// and like silence to the heartbeat detector above — exactly the failure
/// mode the fault harness (loadbal/ws_cluster.cpp) exists to produce.
///
/// Injected link faults are evaluated receiver-side by FrameFaults
/// against the shared cluster epoch, deterministically per arrival, so a
/// planned drop pattern reproduces without any cross-process RNG.

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "runtime/transport.hpp"

namespace pmpl::runtime {

struct SocketTransportConfig {
  std::uint32_t rank = 0;
  std::uint32_t size = 1;
  std::string dir;  ///< directory for the per-rank socket files

  /// Incarnation number of this rank, stamped into every kHello (and by
  /// the engine into every frame). Peers refuse handshakes whose
  /// generation is older than the newest they have seen from that rank —
  /// the epoch fence that keeps a resumed zombie from displacing its
  /// replacement's connection. A refused zombie is sent one kEpochFence
  /// frame (best effort) before the connection closes, so it learns it
  /// was superseded and can exit instead of spinning.
  std::uint32_t generation = 0;

  /// Restarted incarnations dial *every* peer on start (and may re-dial
  /// any peer later), not just lower ranks: the surviving higher ranks
  /// may have spent their reconnect budget on the dead predecessor and
  /// would otherwise never find the new incarnation.
  bool dial_all = false;

  /// Cluster epoch on the CLOCK_MONOTONIC timeline (seconds), captured by
  /// the launcher before forking so every rank cuts fault windows against
  /// the same zero. 0 = use this transport's construction instant.
  double epoch_steady_s = 0.0;

  double connect_timeout_s = 10.0;   ///< total budget to reach one peer
  double connect_backoff_initial_s = 5e-4;
  double connect_backoff_max_s = 0.25;
  double accept_timeout_s = 10.0;    ///< budget to hear from higher ranks
  double send_timeout_s = 2.0;
  std::uint32_t reconnect_budget = 3;  ///< re-dials per connect-side peer

  FaultPlan faults;  ///< link/token faults, times already in wall seconds

  /// Optional transport trace track: frame_send / frame_recv /
  /// frame_drop / reconnect / clock_sync instants (arg = peer rank).
  /// frame_send/frame_recv additionally carry the wire trace id as a
  /// `corr` arg and emit paired "frame" flow events, so every delivered
  /// frame renders as an arrow between rank tracks in Perfetto.
  Tracer* tracer = nullptr;
  std::string track_name;
  std::size_t trace_capacity = 0;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Establish the full mesh: bind+listen, dial lower ranks, accept
  /// higher ones. Returns false (with a diagnostic in `error`) when a
  /// peer stayed unreachable past its budget; the transport is still
  /// usable then — the missing peer just behaves as a dead one.
  bool start(std::string* error);

  std::uint32_t rank() const noexcept override { return config_.rank; }
  std::uint32_t size() const noexcept override { return config_.size; }
  double now() const override;

  bool send(std::uint32_t to, const Frame& f) override;
  bool recv(Frame& out, double timeout_s) override;
  std::size_t pending() const override;
  const TransportMetrics& metrics() const noexcept override {
    return metrics_;
  }

  /// Flush-and-close every connection and remove this rank's socket file.
  /// Idempotent; the destructor calls it.
  void close();

  /// This rank's cluster epoch on the CLOCK_MONOTONIC timeline.
  double epoch_steady_s() const noexcept { return epoch_steady_s_; }

  /// Clock offset to `peer` as estimated from the hello round trip
  /// (estimate_clock_offset): how far the peer's `now()` runs ahead of
  /// ours, re-estimated on every reconnect handshake. Only the dialing
  /// side of a connection measures (the round trip starts at its hello);
  /// with every rank dialing all lower ranks, every rank except rank 0
  /// holds a direct estimate to rank 0 — the reference trace_merge aligns
  /// on.
  bool clock_offset_known(std::uint32_t peer) const noexcept {
    return peer < clock_known_.size() && clock_known_[peer] != 0;
  }
  double clock_offset(std::uint32_t peer) const noexcept {
    return peer < clock_offset_.size() ? clock_offset_[peer] : 0.0;
  }

 private:
  struct Peer {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;   ///< partial-frame reassembly
    std::uint64_t recv_seq = 0;        ///< arrivals, for fault rolls
    std::uint32_t redials_left = 0;    ///< connect-side reconnect budget
  };

  struct Delayed {
    double due_s = 0.0;
    std::uint64_t seq = 0;
    Frame frame;
    bool operator>(const Delayed& o) const noexcept {
      return due_s != o.due_s ? due_s > o.due_s : seq > o.seq;
    }
  };

  std::string sock_path(std::uint32_t r) const;
  bool dial(std::uint32_t peer, double budget_s);
  void adopt_fd(std::uint32_t peer, int fd, bool count_reconnect);
  void drop_connection(std::uint32_t peer);
  /// Drain readable bytes from `peer`, decoding complete frames into the
  /// ready/delayed queues. Returns false when the connection died.
  bool pump(std::uint32_t peer);
  void ingest(std::uint32_t peer, Frame frame);
  void accept_new();
  /// Read kHello off freshly accepted connections and file them under
  /// their sender's rank (a second connection from a known peer is a
  /// reconnect and replaces the old one).
  void identify_pending();
  void release_due();
  void trace_instant(const char* name, std::uint64_t arg);

  SocketTransportConfig config_;
  std::vector<Peer> peers_;
  int listen_fd_ = -1;
  /// Accepted connections whose kHello has not arrived yet.
  std::vector<Peer> unidentified_;
  std::deque<Frame> ready_;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>>
      delayed_;
  std::uint64_t delay_seq_ = 0;
  /// Newest generation seen in a kHello per peer; older hellos are
  /// refused (see SocketTransportConfig::generation).
  std::vector<std::uint32_t> peer_gen_;
  FrameFaults faults_;
  TransportMetrics metrics_;
  TraceBuffer* trace_ = nullptr;
  double epoch_steady_s_ = 0.0;
  std::uint64_t send_seq_ = 0;  ///< wire trace ids (Frame::seq) handed out
  std::vector<double> clock_offset_;   ///< per-peer RTT-midpoint estimate
  std::vector<std::uint8_t> clock_known_;
};

}  // namespace pmpl::runtime
