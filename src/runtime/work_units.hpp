#pragma once
/// \file work_units.hpp
/// The work-unit cost model: raw operation counts -> simulated seconds.
///
/// The discrete-event simulator replays *measured* planning work under
/// different schedules (DESIGN.md §5). The measurement is a vector of
/// operation counts (collision queries, narrow-phase tests, BVH node
/// visits, k-NN candidate scans, RRT extensions); this header is the single
/// place where those counts are weighted into time. The weights are
/// calibrated to the rough cost of each operation on a ~2.5 GHz core; their
/// absolute scale only shifts all curves uniformly — the comparative shapes
/// the paper reports depend on the ratios, which are structural.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace pmpl::runtime {

/// Operation counts for one unit of schedulable work (one region-phase).
/// `core/` converts planner stats into this; `runtime` stays independent of
/// the planner types.
///
/// The field list exists in exactly one place: `for_each_field`. Accumulation
/// (`operator+=`), serialization (`to_json`) and metrics publishing all
/// iterate it, so adding an op kind is a two-line change (member + table row)
/// that every consumer picks up.
struct WorkCounts {
  std::uint64_t cd_queries = 0;
  std::uint64_t narrow_tests = 0;
  std::uint64_t bvh_nodes = 0;
  std::uint64_t knn_candidates = 0;
  std::uint64_t rrt_extends = 0;
  std::uint64_t ray_casts = 0;

  /// Invoke `fn(name, member_pointer)` for every count field, in the
  /// declaration order used by all serializations.
  template <typename Fn>
  static constexpr void for_each_field(Fn&& fn) {
    fn("cd_queries", &WorkCounts::cd_queries);
    fn("narrow_tests", &WorkCounts::narrow_tests);
    fn("bvh_nodes", &WorkCounts::bvh_nodes);
    fn("knn_candidates", &WorkCounts::knn_candidates);
    fn("rrt_extends", &WorkCounts::rrt_extends);
    fn("ray_casts", &WorkCounts::ray_casts);
  }

  WorkCounts& operator+=(const WorkCounts& o) noexcept {
    for_each_field([&](const char*, auto member) { this->*member += o.*member; });
    return *this;
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for_each_field([&](const char*, auto member) { t += this->*member; });
    return t;
  }

  /// One flat JSON object: {"cd_queries": N, ...}. Shared by the metrics
  /// snapshot, BENCH_*.json writers and the drivers' machine output.
  std::string to_json() const {
    std::string out = "{";
    bool first = true;
    char buf[64];
    for_each_field([&](const char* name, auto member) {
      std::snprintf(buf, sizeof buf, "%s\"%s\": %" PRIu64,
                    first ? "" : ", ", name, this->*member);
      out += buf;
      first = false;
    });
    out += "}";
    return out;
  }
};

/// Publish `w` into a metrics registry as counters named `<prefix><field>`.
/// Templated on the registry so this header stays include-light; any type
/// with `add(name, delta)` (MetricsRegistry) works.
template <typename Registry>
void publish(Registry& reg, const WorkCounts& w, const std::string& prefix) {
  WorkCounts::for_each_field(
      [&](const char* name, auto member) { reg.add(prefix + name, w.*member); });
}

/// Per-operation costs in nanoseconds of simulated time, with a global
/// `scale` for workload fidelity.
///
/// The base constants reflect our box-primitive collision checker. The
/// paper's workloads check articulated/meshed rigid bodies against complex
/// environment geometry, where a single collision query costs 3–5 orders
/// of magnitude more; `paper_fidelity()` applies a uniform scale so that
/// the work : communication ratio of the replayed schedules lands in the
/// regime the paper's clusters operated in. A uniform scale shifts all
/// strategies identically — comparative shapes are unaffected by its exact
/// value, only the relative weight of communication overheads is.
struct CostModel {
  double ns_per_cd_query = 150.0;     ///< fixed robot-vs-env overhead
  double ns_per_narrow_test = 80.0;   ///< OBB/OBB SAT and kin
  double ns_per_bvh_node = 12.0;
  double ns_per_knn_candidate = 25.0; ///< metric eval + heap touch
  double ns_per_rrt_extend = 200.0;   ///< steer + bookkeeping
  double ns_per_ray_cast = 180.0;
  double scale = 1.0;                 ///< uniform workload-fidelity factor

  /// Costs matching the heavy mesh-collision workloads of the paper.
  static CostModel paper_fidelity() {
    CostModel m;
    m.scale = 2e4;
    return m;
  }

  /// Simulated seconds for the given counts.
  double seconds(const WorkCounts& w) const noexcept {
    const double ns =
        ns_per_cd_query * static_cast<double>(w.cd_queries) +
        ns_per_narrow_test * static_cast<double>(w.narrow_tests) +
        ns_per_bvh_node * static_cast<double>(w.bvh_nodes) +
        ns_per_knn_candidate * static_cast<double>(w.knn_candidates) +
        ns_per_rrt_extend * static_cast<double>(w.rrt_extends) +
        ns_per_ray_cast * static_cast<double>(w.ray_casts);
    return scale * ns * 1e-9;
  }
};

}  // namespace pmpl::runtime
