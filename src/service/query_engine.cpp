#include "service/query_engine.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "cspace/local_planner.hpp"

namespace pmpl::service {

namespace {

// Edge-batch tags: (query index, kind, roadmap vertex).
constexpr std::uint64_t kKindDirect = 0;
constexpr std::uint64_t kKindStart = 1;
constexpr std::uint64_t kKindGoal = 2;

constexpr std::uint64_t make_tag(std::size_t qi, std::uint64_t kind,
                                 graph::VertexId to) noexcept {
  return (static_cast<std::uint64_t>(qi) << 40) | (kind << 32) | to;
}
constexpr std::size_t tag_query(std::uint64_t tag) noexcept {
  return static_cast<std::size_t>(tag >> 40);
}
constexpr std::uint64_t tag_kind(std::uint64_t tag) noexcept {
  return (tag >> 32) & 0xffu;
}
constexpr graph::VertexId tag_vertex(std::uint64_t tag) noexcept {
  return static_cast<graph::VertexId>(tag & 0xffffffffu);
}

}  // namespace

const char* to_string(QueryStatus s) noexcept {
  switch (s) {
    case QueryStatus::kSolved: return "solved";
    case QueryStatus::kUnreachable: return "unreachable";
    case QueryStatus::kInvalidEndpoint: return "invalid-endpoint";
    case QueryStatus::kDeadlineMiss: return "deadline-miss";
    case QueryStatus::kNoSnapshot: return "no-snapshot";
  }
  return "?";
}

LatencyQuantiles summarize_latency(const runtime::Histogram& h) noexcept {
  LatencyQuantiles q;
  q.count = h.count();
  if (q.count == 0) return q;
  const auto at = [&](double frac) {
    // Nearest-rank: the smallest bucket whose cumulative count covers
    // ceil(frac * count) samples.
    const auto want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(frac * static_cast<double>(q.count))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < runtime::Histogram::kBuckets; ++b) {
      seen += h.bucket(b);
      if (seen >= want) {
        // Bucket b covers [2^(b-1), 2^b); report the upper bound.
        return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
      }
    }
    return std::ldexp(1.0, runtime::Histogram::kBuckets - 1);
  };
  q.p50_us = at(0.50);
  q.p99_us = at(0.99);
  q.p999_us = at(0.999);
  return q;
}

/// Per-query state threaded through the wave pipeline.
struct QueryEngine::PreparedQuery {
  std::unique_ptr<runtime::CancelToken> token;
  std::vector<planner::AttachEdge> start_edges;
  std::vector<planner::AttachEdge> goal_edges;
  std::uint64_t id = 0;
  std::uint32_t corr = 0;
  bool alive = false;  ///< still needs its A* stage
};

QueryEngine::QueryEngine(const env::Environment& e, SnapshotPool& pool,
                         QueryEngineConfig cfg)
    : env_(&e), pool_(&pool), cfg_(cfg) {
  const std::size_t workers =
      cfg_.workers != 0 ? cfg_.workers : std::thread::hardware_concurrency();
  runtime::SchedulerOptions opts;
  opts.tracer = cfg_.tracer;
  sched_ = std::make_unique<runtime::Scheduler>(workers, opts);

  // Pre-register every instrument so scrapes see a deterministic key set
  // from the first collection on, not one that grows with traffic.
  auto& reg = registry();
  for (const char* name :
       {"service/queries_total", "service/queries_solved",
        "service/queries_unreachable", "service/queries_invalid",
        "service/deadline_missed", "service/queries_no_snapshot",
        "service/finder_rebuilds"})
    reg.counter(name);
  reg.histogram("service/latency_us");
  reg.gauge("service/epoch");
}

QueryEngine::~QueryEngine() = default;

runtime::MetricsRegistry& QueryEngine::registry() const noexcept {
  return cfg_.metrics != nullptr ? *cfg_.metrics
                                 : runtime::MetricsRegistry::global();
}

void QueryEngine::ensure_finder(const RoadmapSnapshot& snap) {
  if (finder_ != nullptr && finder_epoch_ == snap.epoch) return;
  // The finder copies every configuration it indexes, so it stays valid
  // after the snapshot pin is dropped; it is rebuilt once per epoch and
  // amortized over every query answered against that epoch.
  finder_ = planner::make_neighbor_finder(env_->space(), cfg_.exact_knn);
  const auto n = static_cast<graph::VertexId>(snap.roadmap.num_vertices());
  for (graph::VertexId v = 0; v < n; ++v)
    finder_->insert(v, snap.roadmap.vertex(v).cfg);
  finder_epoch_ = snap.epoch;
  registry().add("service/finder_rebuilds", 1);
}

void QueryEngine::record(const QueryRequest& q, QueryResult& r,
                         double start_s) {
  (void)q;
  r.latency_s = now_s() - start_s;
  auto& reg = registry();
  reg.add("service/queries_total", 1);
  switch (r.status) {
    case QueryStatus::kSolved:
      reg.add("service/queries_solved", 1);
      break;
    case QueryStatus::kUnreachable:
      reg.add("service/queries_unreachable", 1);
      break;
    case QueryStatus::kInvalidEndpoint:
      reg.add("service/queries_invalid", 1);
      break;
    case QueryStatus::kDeadlineMiss:
      break;  // counted below through the degraded flag
    case QueryStatus::kNoSnapshot:
      reg.add("service/queries_no_snapshot", 1);
      break;
  }
  if (r.degraded) reg.add("service/deadline_missed", 1);
  reg.observe("service/latency_us", r.latency_s * 1e6);
}

std::vector<QueryResult> QueryEngine::run_batch(
    std::span<const QueryRequest> queries) {
  const std::size_t n = queries.size();
  std::vector<QueryResult> results(n);
  if (n == 0) return results;
  const double t0 = now_s();

  std::vector<PreparedQuery> prep(n);
  {
    std::lock_guard lock(queue_mutex_);
    for (auto& p : prep) p.id = next_id_++;
  }

  SnapshotRef snap = pool_->acquire();
  if (!snap) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i].status = QueryStatus::kNoSnapshot;
      record(queries[i], results[i], t0);
    }
    return results;
  }
  const std::uint64_t epoch = snap->epoch;
  registry().set("service/epoch", static_cast<double>(epoch));
  ensure_finder(*snap);

  runtime::TraceBuffer* admit_track =
      cfg_.tracer != nullptr ? cfg_.tracer->thread_track("service admit")
                             : nullptr;

  // Stage 0 — admission: deadline tokens, endpoint validity, trace flows.
  planner::PlannerStats st;
  std::size_t kmax = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const QueryRequest& q = queries[i];
    PreparedQuery& p = prep[i];
    p.token = std::make_unique<runtime::CancelToken>(q.deadline);
    p.corr = runtime::trace_corr(63, static_cast<std::uint32_t>(epoch),
                                 p.id);
    results[i].epoch = epoch;
    if (admit_track != nullptr) {
      const double now = cfg_.tracer->now_s();
      admit_track->instant_at("query_admit", now, p.id, p.corr);
      admit_track->flow_start_at("query", now, p.corr);
    }
    if (p.token->stop_requested()) {
      results[i].status = QueryStatus::kDeadlineMiss;
      results[i].degraded = true;
      record(q, results[i], t0);
      continue;
    }
    if (!env_->validity().valid(q.start, &st.cd) ||
        !env_->validity().valid(q.goal, &st.cd)) {
      results[i].status = QueryStatus::kInvalidEndpoint;
      record(q, results[i], t0);
      continue;
    }
    p.alive = true;
    kmax = std::max(kmax, q.k);
  }

  // Stage 1 — one batched k-NN pass for every live endpoint. All queries
  // share kmax; a query wanting fewer neighbors takes the prefix of its
  // result span (the canonical neighbor order makes the k-best set a
  // prefix of the kmax-best set, so this is exactly its own k-NN answer).
  std::vector<std::size_t> live;
  live.reserve(n);
  std::vector<cspace::Config> qcfgs;
  qcfgs.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!prep[i].alive) continue;
    live.push_back(i);
    qcfgs.push_back(queries[i].start);
    qcfgs.push_back(queries[i].goal);
  }
  if (live.empty()) return results;
  finder_->nearest_batch(qcfgs, kmax, knn_scratch_, &st);

  // Stage 2 — cross-query edge validation: every attachment candidate of
  // every live query flows through one speculative window, so the wide
  // validity lanes stay full across queries, not just within one.
  const planner::Roadmap& g = snap->roadmap;
  cspace::EdgeBatchPlanner ebp(env_->space(), env_->validity(),
                               cfg_.resolution, cfg_.edge_window);
  const auto commit_one = [&] {
    const auto out = ebp.next(&st.cd);
    if (!out.result.success) return;
    const std::size_t qi = tag_query(out.tag);
    PreparedQuery& p = prep[qi];
    switch (tag_kind(out.tag)) {
      case kKindDirect:
        // Direct start->goal shot succeeded: answered without the roadmap,
        // mirroring query_roadmap's trivial-query short-circuit.
        if (results[qi].path.empty()) {
          results[qi].status = QueryStatus::kSolved;
          results[qi].length = out.result.length;
          results[qi].path = {queries[qi].start, queries[qi].goal};
          p.alive = false;
        }
        break;
      case kKindStart:
        p.start_edges.push_back({tag_vertex(out.tag), out.result.length});
        break;
      case kKindGoal:
        p.goal_edges.push_back({tag_vertex(out.tag), out.result.length});
        break;
      default:
        break;
    }
  };
  const auto admit = [&](const cspace::Config& a, const cspace::Config& b,
                         std::uint64_t tag) {
    if (!ebp.can_admit()) commit_one();
    ebp.admit(a, b, tag);
  };
  for (std::size_t li = 0; li < live.size(); ++li) {
    const std::size_t i = live[li];
    const QueryRequest& q = queries[i];
    PreparedQuery& p = prep[i];
    if (p.token->stop_requested()) {
      // Deadline fired during the batch phase: this query admits nothing
      // more (edges already in flight drain harmlessly — their outcomes
      // land in a result that is already final).
      results[i].status = QueryStatus::kDeadlineMiss;
      results[i].degraded = true;
      p.alive = false;
      record(q, results[i], t0);
      continue;
    }
    admit(q.start, q.goal, make_tag(i, kKindDirect, 0));
    const auto start_nn = knn_scratch_.of(2 * li);
    const auto goal_nn = knn_scratch_.of(2 * li + 1);
    const std::size_t ks = std::min(q.k, start_nn.size());
    for (std::size_t j = 0; j < ks; ++j)
      admit(q.start, g.vertex(start_nn[j].id).cfg,
            make_tag(i, kKindStart, start_nn[j].id));
    const std::size_t kg = std::min(q.k, goal_nn.size());
    for (std::size_t j = 0; j < kg; ++j)
      admit(q.goal, g.vertex(goal_nn[j].id).cfg,
            make_tag(i, kKindGoal, goal_nn[j].id));
  }
  while (ebp.pending()) commit_one();

  // Direct-solved queries are final now.
  for (const std::size_t i : live) {
    if (!prep[i].alive && results[i].status == QueryStatus::kSolved)
      record(queries[i], results[i], t0);
  }

  // Stage 3 — per-query A* fan-out onto scheduler workers. Each query
  // writes only its own slot, so any interleaving yields the same results.
  std::vector<std::size_t> astar_ix;
  astar_ix.reserve(live.size());
  for (const std::size_t i : live)
    if (prep[i].alive) astar_ix.push_back(i);

  const runtime::CancelToken wave;  // engine-level; per-query tokens gate
  runtime::parallel_for_cancellable(
      *sched_, astar_ix.size(),
      [&](std::size_t j) {
        const std::size_t i = astar_ix[j];
        const QueryRequest& q = queries[i];
        PreparedQuery& p = prep[i];
        QueryResult& r = results[i];
        runtime::TraceBuffer* track =
            cfg_.tracer != nullptr ? cfg_.tracer->thread_track() : nullptr;
        if (track != nullptr)
          track->flow_end_at("query", cfg_.tracer->now_s(), p.corr);
        runtime::TraceSpan span(cfg_.tracer, track, "query", p.id);
        if (p.token->stop_requested()) {
          r.status = QueryStatus::kDeadlineMiss;
          r.degraded = true;
          record(q, r, t0);
          return;
        }
        auto path = planner::find_path_with_attachments(
            *env_, g, q.start, q.goal, p.start_edges, p.goal_edges);
        if (path.has_value()) {
          r.status = QueryStatus::kSolved;
          r.path = std::move(*path);
          r.length = planner::path_length(*env_, r.path);
        } else {
          r.status = QueryStatus::kUnreachable;
        }
        // Finished, but possibly past the deadline: keep the answer and
        // mark it late rather than discarding completed work.
        r.degraded = p.token->stop_requested();
        if (track != nullptr)
          track->instant_at("query_done", cfg_.tracer->now_s(),
                            static_cast<std::uint64_t>(r.status), p.corr);
        record(q, r, t0);
      },
      wave);

  return results;
}

std::uint64_t QueryEngine::submit(QueryRequest q) {
  std::lock_guard lock(queue_mutex_);
  const std::uint64_t id = next_id_++;
  queue_.emplace_back(id, std::move(q));
  return id;
}

std::vector<std::pair<std::uint64_t, QueryResult>> QueryEngine::drain() {
  std::vector<std::pair<std::uint64_t, QueryRequest>> pending;
  {
    std::lock_guard lock(queue_mutex_);
    pending.swap(queue_);
  }
  std::vector<QueryRequest> reqs;
  reqs.reserve(pending.size());
  for (auto& [id, req] : pending) reqs.push_back(req);
  auto results = run_batch(reqs);
  std::vector<std::pair<std::uint64_t, QueryResult>> out;
  out.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i)
    out.emplace_back(pending[i].first, std::move(results[i]));
  return out;
}

LatencyQuantiles QueryEngine::latency() const {
  return summarize_latency(registry().histogram("service/latency_us"));
}

}  // namespace pmpl::service
