#pragma once
/// \file query_engine.hpp
/// Batched concurrent multi-query planner engine.
///
/// The engine answers waves of start/goal queries against one pinned
/// roadmap snapshot (service/snapshot.hpp). The per-query costs that
/// one-shot querying pays over and over are amortized *across* queries:
///
///  - the k-NN finder is built once per snapshot epoch and reused for
///    every query until the next epoch (query_roadmap rebuilds it per
///    call — the dominant per-query cost on large roadmaps);
///  - all start/goal k-NN lookups of a wave run through one KnnBatch;
///  - all attachment edges (direct start->goal shots plus start/goal
///    k-NN connections) of a wave validate through one EdgeBatchPlanner
///    window, so the wide validity lanes stay full across queries;
///  - the per-query A* searches fan out onto scheduler workers via
///    parallel_for_cancellable.
///
/// The roadmap is only read (overlay attach, planner/query.hpp), so any
/// number of in-flight queries share one snapshot without synchronization.
///
/// Deadlines: every query may carry a runtime::Deadline. An expired
/// deadline is observed at each pipeline stage boundary (admission, k-NN,
/// edge validation, A*) — one granule of bounded overrun, never a stuck
/// worker — and the query returns QueryStatus::kDeadlineMiss with
/// `degraded` set. A query that completes but past its deadline keeps its
/// path and is marked degraded (late delivery).
///
/// Determinism: batching and attachment run on the calling thread in
/// admission order; the A* fan-out writes each query's result into its own
/// slot. With deadlines off, the same snapshot + the same request sequence
/// produce bit-identical paths for any worker count or interleaving.

#include <cstdint>
#include <span>
#include <vector>

#include "env/environment.hpp"
#include "planner/knn.hpp"
#include "planner/query.hpp"
#include "runtime/cancel.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "service/snapshot.hpp"

namespace pmpl::service {

/// One planning problem admitted to the engine.
struct QueryRequest {
  cspace::Config start;
  cspace::Config goal;
  runtime::Deadline deadline{};  ///< default: never expires
  std::size_t k = 8;             ///< attachment neighbors per endpoint
};

enum class QueryStatus : std::uint8_t {
  kSolved = 0,
  kUnreachable = 1,      ///< endpoints valid but not connected in this epoch
  kInvalidEndpoint = 2,  ///< start or goal in collision
  kDeadlineMiss = 3,     ///< deadline expired before an answer was produced
  kNoSnapshot = 4,       ///< nothing published yet
};
const char* to_string(QueryStatus s) noexcept;

struct QueryResult {
  QueryStatus status = QueryStatus::kNoSnapshot;
  bool degraded = false;  ///< deadline expired before completion
  std::uint64_t epoch = 0;  ///< snapshot epoch the answer is valid against
  double latency_s = 0.0;
  double length = 0.0;  ///< metric path length when solved
  std::vector<cspace::Config> path;
};

struct QueryEngineConfig {
  std::size_t workers = 0;   ///< 0: hardware concurrency
  double resolution = 1.0;   ///< local-plan validation step
  std::size_t edge_window = 8;  ///< cross-query edge batching window
  bool exact_knn = false;
  /// Metrics sink; nullptr = MetricsRegistry::global(). Published live:
  ///   counters  service/queries_total, service/queries_solved,
  ///             service/queries_unreachable, service/queries_invalid,
  ///             service/deadline_missed, service/finder_rebuilds
  ///   histogram service/latency_us (log2 buckets)
  ///   gauges    service/epoch (snapshot answered against)
  runtime::MetricsRegistry* metrics = nullptr;
  /// Tracing sink; nullptr disables. Each query emits an admission instant
  /// + flow arrow (category "query", correlation id from the query id) on
  /// the admitting thread and a matching flow end + "query" span on the
  /// worker that runs its A*.
  runtime::Tracer* tracer = nullptr;
};

/// Coarse latency quantiles out of a log2-bucketed histogram: each
/// quantile reports its bucket's upper bound, so values are exact to one
/// power of two — the right fidelity for SLO dashboards fed by the
/// lock-free histogram.
struct LatencyQuantiles {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};
LatencyQuantiles summarize_latency(const runtime::Histogram& h) noexcept;

/// Long-lived multi-query engine over a snapshot pool. One engine instance
/// processes one wave at a time (`run_batch` is internally parallel but
/// externally serialized — call it from one thread); `submit`/`drain` add
/// a thread-safe admission queue on top for service frontends.
class QueryEngine {
 public:
  QueryEngine(const env::Environment& e, SnapshotPool& pool,
              QueryEngineConfig cfg = {});
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answer a wave of queries against the current snapshot. Results are
  /// positionally aligned with `queries`.
  std::vector<QueryResult> run_batch(std::span<const QueryRequest> queries);

  /// Enqueue one query for the next drain; returns its query id.
  /// Thread-safe against concurrent submit and drain.
  std::uint64_t submit(QueryRequest q);

  /// Process everything queued at the time of the call as one batch;
  /// returns (id, result) pairs in admission order.
  std::vector<std::pair<std::uint64_t, QueryResult>> drain();

  /// Quantiles of the engine's own latency histogram.
  LatencyQuantiles latency() const;

  /// Publish the pool's snapshot gauges alongside the engine's counters.
  void publish_pool_metrics() { pool_->publish_metrics(registry()); }

  const QueryEngineConfig& config() const noexcept { return cfg_; }
  runtime::Scheduler& scheduler() noexcept { return *sched_; }

 private:
  struct PreparedQuery;

  runtime::MetricsRegistry& registry() const noexcept;
  void ensure_finder(const RoadmapSnapshot& snap);
  void record(const QueryRequest& q, QueryResult& r, double start_s);

  const env::Environment* env_;
  SnapshotPool* pool_;
  QueryEngineConfig cfg_;
  std::unique_ptr<runtime::Scheduler> sched_;

  // Per-epoch k-NN finder cache: rebuilt when the pinned epoch changes,
  // amortized across every query of every wave until the next epoch.
  std::unique_ptr<planner::NeighborFinder> finder_;
  std::uint64_t finder_epoch_ = 0;
  planner::KnnBatch knn_scratch_;

  std::mutex queue_mutex_;
  std::vector<std::pair<std::uint64_t, QueryRequest>> queue_;
  std::uint64_t next_id_ = 1;

  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  double now_s() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }
};

}  // namespace pmpl::service
