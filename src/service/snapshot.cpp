#include "service/snapshot.hpp"

#include <thread>

#include "cspace/local_planner.hpp"
#include "planner/knn.hpp"

namespace pmpl::service {

namespace {
std::atomic<std::uint64_t> g_live_snapshots{0};
}  // namespace

RoadmapSnapshot::RoadmapSnapshot(planner::Roadmap g, std::uint64_t ep)
    : roadmap(std::move(g)), epoch(ep) {
  g_live_snapshots.fetch_add(1, std::memory_order_relaxed);
}

RoadmapSnapshot::~RoadmapSnapshot() {
  g_live_snapshots.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t RoadmapSnapshot::live_count() noexcept {
  return g_live_snapshots.load(std::memory_order_relaxed);
}

void SnapshotRef::release() noexcept {
  if (pool_ != nullptr) {
    pool_->unpin(slot_);
    pool_ = nullptr;
    snap_ = nullptr;
  }
}

SnapshotPool::~SnapshotPool() {
  // Destruction contract: no outstanding refs, no concurrent publishers.
  for (Slot& s : slots_) delete s.snap.exchange(nullptr);
}

SnapshotRef SnapshotPool::acquire() noexcept {
  for (;;) {
    const std::uint32_t ix = current_.load(std::memory_order_acquire);
    if (ix == kNoSlot) return {};
    Slot& s = slots_[ix];
    s.pins.fetch_add(1, std::memory_order_seq_cst);
    if (s.state.load(std::memory_order_seq_cst) == kLive) {
      // The pin landed while the slot was live, so the reclaimer (which
      // flips the state away from kLive before re-checking pins) is now
      // excluded: the snapshot pointer is stable until we unpin.
      return SnapshotRef(this, ix, s.snap.load(std::memory_order_acquire));
    }
    // Lost the race with a publish/reclaim of this slot: back out without
    // ever dereferencing and retry on the fresh current index.
    unpin(ix);
  }
}

void SnapshotPool::unpin(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  if (s.pins.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Possibly the last reader of a retired epoch: reclaim it now rather
    // than waiting for the next publish to sweep.
    if (s.state.load(std::memory_order_seq_cst) == kRetired)
      try_reclaim(slot);
  }
}

void SnapshotPool::try_reclaim(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  if (s.pins.load(std::memory_order_seq_cst) != 0) return;
  std::uint32_t expected = kRetired;
  if (!s.state.compare_exchange_strong(expected, kReclaiming,
                                       std::memory_order_seq_cst))
    return;  // someone else is reclaiming, or the slot is not retired
  // Readers that pinned between our pins check and the CAS observe a
  // non-kLive state and unpin without dereferencing; wait out those
  // transient pins (bounded: no reader holds a pin on a non-live slot).
  while (s.pins.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  delete s.snap.exchange(nullptr, std::memory_order_acq_rel);
  reclaimed_.fetch_add(1, std::memory_order_relaxed);
  s.state.store(kEmpty, std::memory_order_seq_cst);
}

std::uint32_t SnapshotPool::claim_empty_slot() noexcept {
  for (std::uint32_t i = 0; i < kSlots; ++i) {
    std::uint32_t expected = kEmpty;
    if (slots_[i].state.compare_exchange_strong(expected, kFilling,
                                                std::memory_order_seq_cst))
      return i;
  }
  return kNoSlot;
}

std::uint64_t SnapshotPool::publish(planner::Roadmap roadmap) {
  std::lock_guard lock(publish_mutex_);
  const std::uint64_t epoch =
      next_epoch_.fetch_add(1, std::memory_order_relaxed);
  auto* snap = new RoadmapSnapshot(std::move(roadmap), epoch);

  std::uint32_t ix = claim_empty_slot();
  while (ix == kNoSlot) {
    // Every slot holds a pinned epoch. Sweep retired slots whose readers
    // have since dropped, then yield to them; publication waits, queries
    // never do.
    for (std::uint32_t i = 0; i < kSlots; ++i) try_reclaim(i);
    if ((ix = claim_empty_slot()) != kNoSlot) break;
    std::this_thread::yield();
  }

  Slot& s = slots_[ix];
  s.snap.store(snap, std::memory_order_release);
  s.state.store(kLive, std::memory_order_seq_cst);

  const std::uint32_t prev = current_.exchange(ix, std::memory_order_seq_cst);
  current_epoch_.store(epoch, std::memory_order_release);
  published_.fetch_add(1, std::memory_order_relaxed);

  if (prev != kNoSlot) {
    slots_[prev].state.store(kRetired, std::memory_order_seq_cst);
    try_reclaim(prev);
  }
  return epoch;
}

std::uint64_t SnapshotPool::live_slots() const noexcept {
  std::uint64_t n = 0;
  for (const Slot& s : slots_) {
    const std::uint32_t st = s.state.load(std::memory_order_acquire);
    if (st == kLive || st == kRetired || st == kFilling) ++n;
  }
  return n;
}

std::uint64_t SnapshotPool::current_readers() const noexcept {
  const std::uint32_t ix = current_.load(std::memory_order_acquire);
  if (ix == kNoSlot) return 0;
  return slots_[ix].pins.load(std::memory_order_acquire);
}

void SnapshotPool::publish_metrics(runtime::MetricsRegistry& reg,
                                   const std::string& prefix) {
  reg.set(prefix + "epoch", static_cast<double>(current_epoch()));
  reg.set(prefix + "snapshots_live", static_cast<double>(live_slots()));
  reg.set(prefix + "snapshot_readers",
          static_cast<double>(current_readers()));
  const std::uint64_t pub = published_total();
  const std::uint64_t rec = reclaimed_total();
  reg.add(prefix + "snapshots_published", pub - metrics_published_base_);
  reg.add(prefix + "snapshots_reclaimed", rec - metrics_reclaimed_base_);
  metrics_published_base_ = pub;
  metrics_reclaimed_base_ = rec;
}

std::uint64_t densify_and_publish(SnapshotPool& pool,
                                  const env::Environment& e,
                                  const planner::PrmParams& params,
                                  std::size_t attempts, std::uint64_t seed,
                                  planner::PlannerStats* stats,
                                  const runtime::CancelToken* cancel) {
  planner::PlannerStats local;
  planner::PlannerStats& st = stats != nullptr ? *stats : local;

  // Copy-on-rebuild: readers keep the old epoch; we densify a private copy.
  planner::Roadmap next;
  if (SnapshotRef cur = pool.acquire()) next = cur->roadmap;

  Xoshiro256ss rng(seed);
  const auto samples = planner::sample_region(
      e, e.space().position_bounds(), attempts, rng, st, cancel);
  std::vector<graph::VertexId> fresh;
  fresh.reserve(samples.size());
  for (const auto& c : samples) fresh.push_back(next.add_vertex({c, 0}));

  if (!fresh.empty()) {
    // Connect each fresh vertex into the *whole* graph (old + new), unlike
    // connect_within which only searches inside one id set. k-NN runs as
    // one batch; edge validation goes through the cross-edge window so the
    // wide validity lanes stay full across short or early-rejecting edges.
    auto finder = planner::make_neighbor_finder(e.space(), params.exact_knn);
    for (graph::VertexId v = 0;
         v < static_cast<graph::VertexId>(next.num_vertices()); ++v)
      finder->insert(v, next.vertex(v).cfg);

    std::vector<cspace::Config> qcfgs;
    qcfgs.reserve(fresh.size());
    for (graph::VertexId id : fresh) qcfgs.push_back(next.vertex(id).cfg);
    planner::KnnBatch batch;
    finder->nearest_batch(qcfgs, params.k_neighbors + 1, batch, &st);

    cspace::EdgeBatchPlanner ebp(e.space(), e.validity(), params.resolution,
                                 params.edge_window);
    const auto commit_one = [&] {
      const auto out = ebp.next(&st.cd);
      const auto a = static_cast<graph::VertexId>(out.tag >> 32);
      const auto b = static_cast<graph::VertexId>(out.tag & 0xffffffffu);
      if (next.has_edge(a, b)) return;
      ++st.lp_attempts;
      st.lp_steps += out.result.steps_checked;
      st.cd.queries += out.result.steps_checked;
      if (out.result.success) {
        ++st.lp_success;
        next.add_edge(a, b, {out.result.length});
      }
    };
    for (std::size_t qi = 0; qi < fresh.size(); ++qi) {
      const graph::VertexId id = fresh[qi];
      if (runtime::stop_requested(cancel)) break;
      for (const planner::Neighbor& n : batch.of(qi)) {
        if (n.id == id) continue;
        if (next.has_edge(id, n.id)) continue;
        if (!ebp.can_admit()) commit_one();
        ebp.admit(next.vertex(id).cfg, next.vertex(n.id).cfg,
                  (static_cast<std::uint64_t>(id) << 32) | n.id);
      }
    }
    while (ebp.pending()) commit_one();
  }

  return pool.publish(std::move(next));
}

}  // namespace pmpl::service
