#pragma once
/// \file snapshot.hpp
/// Epoch/RCU-style pool of immutable roadmap snapshots.
///
/// The service layer decouples *query* traffic from *construction*: queries
/// run against a pinned, immutable snapshot of the roadmap while a
/// background rebuild densifies a copy and publishes the result as the next
/// epoch with a single atomic index swap. Readers never block on
/// construction, construction never blocks on readers, and a retired
/// snapshot is reclaimed exactly when its last reader drops.
///
/// Reader protocol (lock-free; two atomic ops to pin):
///   1. load the current slot index,
///   2. fetch_add the slot's pin count,
///   3. re-check the slot state — if it is not kLive (the slot was retired
///      or is being refilled between steps 1 and 2), unpin and retry.
/// A pinned slot cannot be reclaimed: the reclaimer only frees a slot it
/// has moved kRetired -> kReclaiming, and it re-waits for transient pins
/// (readers between steps 2 and 3, who will observe the non-live state and
/// unpin without ever dereferencing the snapshot) to drain first.
///
/// Publication claims an empty slot, fills it, marks it kLive, swings the
/// current index, then retires the previous slot. With `kSlots` slots, up
/// to kSlots - 1 old epochs can stay pinned by long-running readers while
/// new epochs keep publishing; `publish` only waits when every slot is
/// still pinned (pathological reader hoarding), never the other way round.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "planner/prm.hpp"
#include "planner/roadmap.hpp"
#include "runtime/cancel.hpp"
#include "runtime/metrics_registry.hpp"

namespace pmpl::service {

/// One immutable published roadmap. Never mutated after publication; safe
/// to read from any number of threads.
struct RoadmapSnapshot {
  planner::Roadmap roadmap;
  std::uint64_t epoch = 0;

  RoadmapSnapshot(planner::Roadmap g, std::uint64_t ep);
  ~RoadmapSnapshot();
  RoadmapSnapshot(const RoadmapSnapshot&) = delete;
  RoadmapSnapshot& operator=(const RoadmapSnapshot&) = delete;

  /// Snapshots currently alive in the process (reclamation tests).
  static std::uint64_t live_count() noexcept;
};

class SnapshotPool;

/// RAII pin on one published snapshot. While a ref is held the snapshot
/// (and its epoch's roadmap) stays valid no matter how many newer epochs
/// publish; dropping the last ref of a retired epoch reclaims it.
class SnapshotRef {
 public:
  SnapshotRef() noexcept = default;
  ~SnapshotRef() { release(); }

  SnapshotRef(SnapshotRef&& o) noexcept
      : pool_(o.pool_), slot_(o.slot_), snap_(o.snap_) {
    o.pool_ = nullptr;
    o.snap_ = nullptr;
  }
  SnapshotRef& operator=(SnapshotRef&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = o.pool_;
      slot_ = o.slot_;
      snap_ = o.snap_;
      o.pool_ = nullptr;
      o.snap_ = nullptr;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  explicit operator bool() const noexcept { return snap_ != nullptr; }
  const RoadmapSnapshot* get() const noexcept { return snap_; }
  const RoadmapSnapshot* operator->() const noexcept { return snap_; }
  const RoadmapSnapshot& operator*() const noexcept { return *snap_; }

  /// Drop the pin early (idempotent).
  void release() noexcept;

 private:
  friend class SnapshotPool;
  SnapshotRef(SnapshotPool* pool, std::uint32_t slot,
              const RoadmapSnapshot* snap) noexcept
      : pool_(pool), slot_(slot), snap_(snap) {}

  SnapshotPool* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  const RoadmapSnapshot* snap_ = nullptr;
};

/// Fixed-slot snapshot pool. One logical publisher at a time (publish is
/// internally serialized); any number of concurrent readers.
class SnapshotPool {
 public:
  static constexpr std::size_t kSlots = 8;

  SnapshotPool() = default;
  ~SnapshotPool();
  SnapshotPool(const SnapshotPool&) = delete;
  SnapshotPool& operator=(const SnapshotPool&) = delete;

  /// Publish `roadmap` as the next epoch; returns that epoch (1-based).
  /// Readers pinned on older epochs are unaffected. Waits only when all
  /// kSlots slots are pinned by readers.
  std::uint64_t publish(planner::Roadmap roadmap);

  /// Pin the current snapshot. Empty ref iff nothing has been published.
  /// Lock-free: retries only while racing a concurrent publish/reclaim.
  SnapshotRef acquire() noexcept;

  /// Epoch of the current snapshot; 0 before the first publish.
  std::uint64_t current_epoch() const noexcept {
    return current_epoch_.load(std::memory_order_acquire);
  }

  std::uint64_t published_total() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_total() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Slots holding a snapshot (live + retired-but-pinned).
  std::uint64_t live_slots() const noexcept;
  /// Readers currently pinning the current slot.
  std::uint64_t current_readers() const noexcept;

  /// Gauges `<prefix>epoch`, `<prefix>snapshots_live`,
  /// `<prefix>snapshot_readers` and counters `<prefix>snapshots_published`,
  /// `<prefix>snapshots_reclaimed` (counters are set as deltas since the
  /// last call on this pool — call from one collection thread).
  void publish_metrics(runtime::MetricsRegistry& reg,
                       const std::string& prefix = "service/");

 private:
  friend class SnapshotRef;

  enum : std::uint32_t { kEmpty = 0, kFilling = 1, kLive = 2, kRetired = 3,
                         kReclaiming = 4 };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    std::atomic<std::uint32_t> state{kEmpty};
    std::atomic<std::uint64_t> pins{0};
    std::atomic<const RoadmapSnapshot*> snap{nullptr};
  };

  void unpin(std::uint32_t slot) noexcept;
  void try_reclaim(std::uint32_t slot) noexcept;
  std::uint32_t claim_empty_slot() noexcept;  ///< kNoSlot when none free

  std::array<Slot, kSlots> slots_;
  std::atomic<std::uint32_t> current_{kNoSlot};
  std::atomic<std::uint64_t> current_epoch_{0};
  std::atomic<std::uint64_t> next_epoch_{1};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::mutex publish_mutex_;  ///< serializes publishers, never readers
  std::uint64_t metrics_published_base_ = 0;
  std::uint64_t metrics_reclaimed_base_ = 0;
};

/// Incremental densification: copy the pool's current roadmap (or start
/// empty), add `attempts` worth of new PRM samples, connect them into the
/// whole graph through batched k-NN + the cross-edge batching planner, and
/// publish the result as the next epoch. Returns the published epoch.
/// Deterministic given (current epoch contents, seed). A fired `cancel`
/// publishes whatever was densified so far (bounded overrun: one window).
std::uint64_t densify_and_publish(SnapshotPool& pool,
                                  const env::Environment& e,
                                  const planner::PrmParams& params,
                                  std::size_t attempts, std::uint64_t seed,
                                  planner::PlannerStats* stats = nullptr,
                                  const runtime::CancelToken* cancel =
                                      nullptr);

}  // namespace pmpl::service
