#pragma once
/// \file args.hpp
/// Minimal command-line flag parser for bench harnesses and examples.
///
/// Supports `--flag value`, `--flag=value` and boolean `--flag` forms.
/// Numeric lookups are strict: the whole value must parse (trailing
/// garbage like `10x` or `1.5.2` is rejected), it must fit the type, and
/// it must lie within the caller's permitted range — anything else is a
/// clear error on stderr naming the offending flag, then exit(2). Typos
/// silently becoming 0 (the `std::stoll` legacy) cost more debugging time
/// than a hard stop.

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace pmpl {

/// Parses `--key value` / `--key=value` / bare `--key` flags from argv.
/// Unknown positional arguments are ignored. Lookups fall back to defaults.
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[std::string(arg)] = argv[++i];
      } else {
        flags_[std::string(arg)] = "1";
      }
    }
  }

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it != flags_.end() ? it->second : fallback;
  }

  /// Strict integer flag: full-string parse, range-checked against
  /// [lo, hi]. Errors exit with a message naming the flag.
  std::int64_t get_i64(const std::string& key, std::int64_t fallback,
                       std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
                       std::int64_t hi = std::numeric_limits<std::int64_t>::max()) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const std::string& s = it->second;
    std::int64_t value = 0;
    const auto [end, ec] =
        std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec == std::errc::result_out_of_range)
      die(key, s, "integer out of range");
    if (ec != std::errc{} || end != s.data() + s.size() || s.empty())
      die(key, s, "not a valid integer");
    if (value < lo || value > hi) die(key, s, "value outside permitted range");
    return value;
  }

  /// Strict floating-point flag: full-string parse (rejects `1.5x`, empty,
  /// and non-finite values), range-checked against [lo, hi].
  double get_f64(const std::string& key, double fallback,
                 double lo = std::numeric_limits<double>::lowest(),
                 double hi = std::numeric_limits<double>::max()) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const std::string& s = it->second;
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec == std::errc::result_out_of_range)
      die(key, s, "number out of range");
    if (ec != std::errc{} || end != s.data() + s.size() || s.empty())
      die(key, s, "not a valid number");
    if (!(value >= lo && value <= hi))  // also rejects NaN
      die(key, s, "value outside permitted range");
    return value;
  }

  /// Strict boolean flag: accepts 1/0, true/false, yes/no, on/off.
  bool get_bool(const std::string& key, bool fallback = false) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    const std::string& s = it->second;
    if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
    if (s == "0" || s == "false" || s == "no" || s == "off") return false;
    die(key, s, "not a valid boolean (use 1/0, true/false, yes/no, on/off)");
  }

 private:
  [[noreturn]] static void die(const std::string& key, const std::string& value,
                               const char* what) {
    std::fprintf(stderr, "error: flag --%s: %s: '%s'\n", key.c_str(), what,
                 value.c_str());
    std::exit(2);
  }

  std::map<std::string, std::string> flags_;
};

}  // namespace pmpl
