#pragma once
/// \file args.hpp
/// Minimal command-line flag parser for bench harnesses and examples.
///
/// Supports `--flag value`, `--flag=value` and boolean `--flag` forms.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pmpl {

/// Parses `--key value` / `--key=value` / bare `--key` flags from argv.
/// Unknown positional arguments are ignored. Lookups fall back to defaults.
class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) continue;
      arg.remove_prefix(2);
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[std::string(arg)] = argv[++i];
      } else {
        flags_[std::string(arg)] = "1";
      }
    }
  }

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags_.find(key);
    return it != flags_.end() ? it->second : fallback;
  }

  std::int64_t get_i64(const std::string& key, std::int64_t fallback) const {
    const auto it = flags_.find(key);
    return it != flags_.end() ? std::stoll(it->second) : fallback;
  }

  double get_f64(const std::string& key, double fallback) const {
    const auto it = flags_.find(key);
    return it != flags_.end() ? std::stod(it->second) : fallback;
  }

  bool get_bool(const std::string& key, bool fallback = false) const {
    const auto it = flags_.find(key);
    if (it == flags_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace pmpl
