#pragma once
/// \file inline_vector.hpp
/// Fixed-capacity vector with inline storage — no heap allocation.
///
/// Configurations (up to 16 DOF values in this library) and other small
/// hot-path aggregates use `InlineVector` to avoid allocator traffic in the
/// sampling/connection inner loops.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <type_traits>

namespace pmpl {

/// Contiguous sequence with capacity fixed at compile time.
/// Only supports trivially-destructible T (all current uses are arithmetic
/// types), which keeps the implementation a plain std::array + size.
template <typename T, std::size_t Capacity>
class InlineVector {
  static_assert(std::is_trivially_destructible_v<T>,
                "InlineVector only supports trivially destructible types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr InlineVector() noexcept = default;

  constexpr InlineVector(std::initializer_list<T> init) {
    assert(init.size() <= Capacity);
    for (const T& v : init) push_back(v);
  }

  constexpr InlineVector(std::size_t count, const T& value) {
    assert(count <= Capacity);
    for (std::size_t i = 0; i < count; ++i) push_back(value);
  }

  static constexpr std::size_t capacity() noexcept { return Capacity; }
  constexpr std::size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }
  constexpr bool full() const noexcept { return size_ == Capacity; }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr void push_back(const T& v) {
    assert(size_ < Capacity);
    data_[size_++] = v;
  }

  constexpr void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  constexpr void resize(std::size_t n, const T& fill = T{}) {
    assert(n <= Capacity);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  constexpr T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  constexpr T& front() { return (*this)[0]; }
  constexpr const T& front() const { return (*this)[0]; }
  constexpr T& back() { return (*this)[size_ - 1]; }
  constexpr const T& back() const { return (*this)[size_ - 1]; }

  constexpr T* data() noexcept { return data_.data(); }
  constexpr const T* data() const noexcept { return data_.data(); }

  constexpr iterator begin() noexcept { return data(); }
  constexpr const_iterator begin() const noexcept { return data(); }
  constexpr iterator end() noexcept { return data() + size_; }
  constexpr const_iterator end() const noexcept { return data() + size_; }

  friend constexpr bool operator==(const InlineVector& a,
                                   const InlineVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<T, Capacity> data_{};
  std::size_t size_ = 0;
};

}  // namespace pmpl
