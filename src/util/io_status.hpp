#pragma once
/// \file io_status.hpp
/// Error codes for persistence loaders (roadmap, environment, checkpoint).
///
/// Malformed, truncated or corrupt files must be *rejected with a code* —
/// never UB, never an abort, never a silently wrong object. Loaders return
/// the parsed value on success and one of these on failure so callers can
/// distinguish "file absent" (fine, start fresh) from "file corrupt"
/// (warn loudly, then start fresh) from "file from a different build"
/// (refuse to resume).

#include <cstddef>
#include <cstdint>

namespace pmpl {

enum class IoStatus {
  kOk = 0,
  kOpenFailed,           ///< file missing or unreadable
  kBadMagic,             ///< not one of our files
  kBadVersion,           ///< recognized magic, unsupported version
  kMalformed,            ///< syntax error / unknown record / bad field
  kTruncated,            ///< ends mid-record or missing footer
  kChecksumMismatch,     ///< payload bytes corrupted
  kCountMismatch,        ///< declared record counts don't match content
  kOutOfRange,           ///< a field exceeds its permitted range
  kFingerprintMismatch,  ///< checkpoint from an incompatible configuration
  kWriteFailed,          ///< save-side stream/rename failure
};

inline const char* to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kOpenFailed: return "open failed";
    case IoStatus::kBadMagic: return "bad magic";
    case IoStatus::kBadVersion: return "unsupported version";
    case IoStatus::kMalformed: return "malformed record";
    case IoStatus::kTruncated: return "truncated file";
    case IoStatus::kChecksumMismatch: return "checksum mismatch";
    case IoStatus::kCountMismatch: return "record count mismatch";
    case IoStatus::kOutOfRange: return "field out of range";
    case IoStatus::kFingerprintMismatch: return "configuration fingerprint mismatch";
    case IoStatus::kWriteFailed: return "write failed";
  }
  return "unknown";
}

/// FNV-1a 64-bit — the checksum used by the persistence formats. Not
/// cryptographic; it catches truncation, bit flips and editor mangling.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t seed = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace pmpl
