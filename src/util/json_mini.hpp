#pragma once
/// \file json_mini.hpp
/// Minimal recursive-descent JSON reader.
///
/// Just enough JSON to *consume* the repo's own machine-readable outputs —
/// Chrome trace files, metrics snapshots, BENCH_*.json — from the tests
/// and the trace-schema validator, without an external dependency. Parses
/// the full JSON grammar (objects, arrays, strings with escapes, numbers,
/// booleans, null) into a plain tree; numbers are doubles (fine for the
/// magnitudes we emit). Not a performance path; do not use it on hot paths.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace pmpl::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }

  /// Object member access; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto& o = as_object();
    const auto it = o.find(key);
    return it == o.end() ? nullptr : &it->second;
  }

 private:
  Storage v_;
};

/// Parse `text`; on failure returns false and sets `error` (with offset).
/// On success `out` holds the root value.
inline bool parse(const std::string& text, Value& out, std::string* error) {
  struct Parser {
    const char* p;
    const char* end;
    const char* begin;
    std::string err;

    void fail(const std::string& what) {
      if (err.empty())
        err = what + " at offset " + std::to_string(p - begin);
    }
    void skip_ws() {
      while (p < end &&
             (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
        ++p;
    }
    bool literal(const char* lit) {
      const char* q = p;
      for (; *lit; ++lit, ++q)
        if (q >= end || *q != *lit) return false;
      p = q;
      return true;
    }
    bool parse_string(std::string& s) {
      if (p >= end || *p != '"') return fail("expected string"), false;
      ++p;
      s.clear();
      while (p < end && *p != '"') {
        if (*p == '\\') {
          ++p;
          if (p >= end) return fail("bad escape"), false;
          switch (*p) {
            case '"': s += '"'; break;
            case '\\': s += '\\'; break;
            case '/': s += '/'; break;
            case 'b': s += '\b'; break;
            case 'f': s += '\f'; break;
            case 'n': s += '\n'; break;
            case 'r': s += '\r'; break;
            case 't': s += '\t'; break;
            case 'u': {
              if (end - p < 5) return fail("bad \\u escape"), false;
              unsigned code = 0;
              for (int i = 1; i <= 4; ++i) {
                const char c = p[i];
                code <<= 4;
                if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                  code |= static_cast<unsigned>(c - 'a' + 10);
                else if (c >= 'A' && c <= 'F')
                  code |= static_cast<unsigned>(c - 'A' + 10);
                else
                  return fail("bad \\u escape"), false;
              }
              // UTF-8 encode (surrogate pairs unsupported; we never emit them).
              if (code < 0x80) {
                s += static_cast<char>(code);
              } else if (code < 0x800) {
                s += static_cast<char>(0xC0 | (code >> 6));
                s += static_cast<char>(0x80 | (code & 0x3F));
              } else {
                s += static_cast<char>(0xE0 | (code >> 12));
                s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                s += static_cast<char>(0x80 | (code & 0x3F));
              }
              p += 4;
              break;
            }
            default: return fail("bad escape"), false;
          }
          ++p;
        } else {
          s += *p++;
        }
      }
      if (p >= end) return fail("unterminated string"), false;
      ++p;  // closing quote
      return true;
    }
    bool parse_value(Value& v) {
      skip_ws();
      if (p >= end) return fail("unexpected end"), false;
      switch (*p) {
        case '{': {
          ++p;
          Object o;
          skip_ws();
          if (p < end && *p == '}') { ++p; v = Value(std::move(o)); return true; }
          for (;;) {
            skip_ws();
            std::string key;
            if (!parse_string(key)) return false;
            skip_ws();
            if (p >= end || *p != ':') return fail("expected ':'"), false;
            ++p;
            Value member;
            if (!parse_value(member)) return false;
            o.emplace(std::move(key), std::move(member));
            skip_ws();
            if (p < end && *p == ',') { ++p; continue; }
            if (p < end && *p == '}') { ++p; break; }
            return fail("expected ',' or '}'"), false;
          }
          v = Value(std::move(o));
          return true;
        }
        case '[': {
          ++p;
          Array a;
          skip_ws();
          if (p < end && *p == ']') { ++p; v = Value(std::move(a)); return true; }
          for (;;) {
            Value elem;
            if (!parse_value(elem)) return false;
            a.push_back(std::move(elem));
            skip_ws();
            if (p < end && *p == ',') { ++p; continue; }
            if (p < end && *p == ']') { ++p; break; }
            return fail("expected ',' or ']'"), false;
          }
          v = Value(std::move(a));
          return true;
        }
        case '"': {
          std::string s;
          if (!parse_string(s)) return false;
          v = Value(std::move(s));
          return true;
        }
        case 't':
          if (literal("true")) { v = Value(true); return true; }
          return fail("bad literal"), false;
        case 'f':
          if (literal("false")) { v = Value(false); return true; }
          return fail("bad literal"), false;
        case 'n':
          if (literal("null")) { v = Value(nullptr); return true; }
          return fail("bad literal"), false;
        default: {
          char* num_end = nullptr;
          const double d = std::strtod(p, &num_end);
          if (num_end == p) return fail("bad value"), false;
          p = num_end;
          v = Value(d);
          return true;
        }
      }
    }
  };

  Parser parser{text.data(), text.data() + text.size(), text.data(), {}};
  Value v;
  if (!parser.parse_value(v)) {
    if (error) *error = parser.err;
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error) *error = "trailing garbage at offset " +
                        std::to_string(parser.p - parser.begin);
    return false;
  }
  out = std::move(v);
  return true;
}

}  // namespace pmpl::json
