#include "util/rng.hpp"

#include <cmath>

namespace pmpl {

double Xoshiro256ss::normal() noexcept {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
  }
}

}  // namespace pmpl
