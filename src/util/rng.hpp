#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// All randomized components of the library draw from `SplitMix64` (seed
/// scrambling / hashing) and `Xoshiro256ss` (the bulk generator).  Region
/// computations are seeded by `derive_seed(global_seed, region_id)` so a
/// region produces an identical sample stream no matter which processor
/// executes it or in which order — the property that makes measured
/// per-region work replayable under any schedule (see DESIGN.md §5).

#include <cstdint>
#include <limits>

namespace pmpl {

/// SplitMix64 step: advances `state` and returns a well-mixed 64-bit value.
/// Used both as a tiny PRNG and as the mixing function for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent stream seed from a global seed and a stream id
/// (e.g. a region id). Collision-resistant in practice for our id ranges.
constexpr std::uint64_t derive_seed(std::uint64_t global_seed,
                                    std::uint64_t stream_id) noexcept {
  std::uint64_t s = global_seed ^ (0x2545f4914f6cdd1dULL * (stream_id + 1));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Satisfies (a subset of) UniformRandomBitGenerator so it can also feed
/// <random> distributions where needed.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style bound).
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    if (n <= 1) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer index in [0, n) as size_t.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_u64(n));
  }

  /// Standard normal via Marsaglia polar method (no <cmath> trig needed).
  double normal() noexcept;

  /// Raw 256-bit state, exposed so a checkpoint can persist the RNG cursor
  /// and a restarted process resumes the exact sample stream (DESIGN.md
  /// §5i). `set_state` trusts the caller: restoring an all-zero state
  /// would wedge the generator, so zeros fall back to the default seed.
  void state(std::uint64_t out[4]) const noexcept {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void set_state(const std::uint64_t in[4]) noexcept {
    if ((in[0] | in[1] | in[2] | in[3]) == 0) {
      *this = Xoshiro256ss{};
      return;
    }
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pmpl
