#include "util/state_file.hpp"

#include <cstdio>
#include <fstream>

namespace pmpl {

namespace {

constexpr char kMagic[8] = {'P', 'M', 'P', 'L', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 56;
constexpr std::size_t kFooterBytes = 8;

void fail(IoStatus* status, IoStatus code) {
  if (status) *status = code;
}

}  // namespace

bool save_state_file(const StateBlob& b, const std::string& path) {
  std::vector<char> header;
  header.reserve(kHeaderBytes);
  put_bytes(header, kMagic, sizeof kMagic);
  put_u32(header, kVersion);
  put_u32(header, b.kind);
  put_u64(header, b.fingerprint);
  put_u64(header, b.seed);
  put_u32(header, b.meta0);
  put_u32(header, b.meta1);
  put_u64(header, b.payload.size());
  put_u64(header, fnv1a64(header.data(), header.size()));

  // Atomic publish: write to a sibling tmp, then rename over the target.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(b.payload.data(),
              static_cast<std::streamsize>(b.payload.size()));
    const std::uint64_t payload_sum =
        fnv1a64(b.payload.data(), b.payload.size());
    out.write(reinterpret_cast<const char*>(&payload_sum),
              sizeof payload_sum);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<StateBlob> load_state_file(const std::string& path,
                                         IoStatus* status) {
  fail(status, IoStatus::kOk);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(status, IoStatus::kOpenFailed);
    return std::nullopt;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof kMagic) {
    fail(status, IoStatus::kTruncated);
    return std::nullopt;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    fail(status, IoStatus::kBadMagic);
    return std::nullopt;
  }
  if (bytes.size() < kHeaderBytes) {
    fail(status, IoStatus::kTruncated);
    return std::nullopt;
  }

  StateReader hdr{bytes.data() + sizeof kMagic,
                  kHeaderBytes - sizeof kMagic};
  const std::uint32_t version = hdr.u32();
  StateBlob b;
  b.kind = hdr.u32();
  b.fingerprint = hdr.u64();
  b.seed = hdr.u64();
  b.meta0 = hdr.u32();
  b.meta1 = hdr.u32();
  const std::uint64_t payload_bytes = hdr.u64();
  const std::uint64_t stored_header_sum = hdr.u64();
  const std::uint64_t header_sum =
      fnv1a64(bytes.data(), kHeaderBytes - sizeof stored_header_sum);
  if (header_sum != stored_header_sum) {
    fail(status, IoStatus::kChecksumMismatch);
    return std::nullopt;
  }
  if (version != kVersion) {
    fail(status, IoStatus::kBadVersion);
    return std::nullopt;
  }

  const std::uint64_t expected = kHeaderBytes + payload_bytes + kFooterBytes;
  if (bytes.size() < expected) {
    fail(status, IoStatus::kTruncated);
    return std::nullopt;
  }
  if (bytes.size() > expected) {
    fail(status, IoStatus::kMalformed);
    return std::nullopt;
  }

  const char* payload = bytes.data() + kHeaderBytes;
  std::uint64_t stored_payload_sum = 0;
  std::memcpy(&stored_payload_sum, payload + payload_bytes,
              sizeof stored_payload_sum);
  if (fnv1a64(payload, payload_bytes) != stored_payload_sum) {
    fail(status, IoStatus::kChecksumMismatch);
    return std::nullopt;
  }

  b.payload.assign(payload, payload + payload_bytes);
  return b;
}

}  // namespace pmpl
