#pragma once
/// \file state_file.hpp
/// The checksummed atomic state-blob container shared by every durable
/// snapshot in the repo (core/anytime build checkpoints, loadbal rank
/// checkpoints).
///
/// Format v1 (byte-identical to the original core/anytime layout, so
/// pre-existing checkpoint files stay readable):
///   header  (56 bytes): magic[8] "PMPLCKPT", version:u32, kind:u32,
///                       fingerprint:u64, seed:u64, meta0:u32, meta1:u32,
///                       payload_bytes:u64, header_checksum:u64
///   payload (payload_bytes): kind-specific records
///   footer  (8 bytes):  payload_checksum:u64
///
/// Every byte is covered by one of the two FNV-1a checksums; the total
/// length is implied by the header, so truncation and trailing garbage are
/// both detected. Saves publish atomically (tmp file + rename): a crash
/// mid-write leaves the previous snapshot (or nothing) in place, never a
/// torn file — the property the supervisor restart path depends on, since
/// a rank may be SIGKILLed in the middle of its own checkpoint write.
///
/// The `kind` field namespaces payload schemas (kCheckpointKindPrm/Rrt in
/// core/anytime; kStateKindWsRank here); `meta0`/`meta1` are two u32s of
/// kind-specific header metadata (anytime: num_regions / region_count).

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "util/io_status.hpp"

namespace pmpl {

/// Payload-schema ids. Anytime build checkpoints own 1 and 2; rank
/// checkpoints (loadbal/ws_rank) own 3; flight-recorder trace fragments
/// (runtime/trace) own 4. Append only.
inline constexpr std::uint32_t kStateKindWsRank = 3;
inline constexpr std::uint32_t kStateKindTraceRing = 4;

/// One durable snapshot: identity header plus an opaque payload.
struct StateBlob {
  std::uint32_t kind = 0;
  std::uint64_t fingerprint = 0;  ///< configuration fingerprint
  std::uint64_t seed = 0;
  std::uint32_t meta0 = 0;  ///< kind-specific (anytime: num_regions)
  std::uint32_t meta1 = 0;  ///< kind-specific (anytime: region_count)
  std::vector<char> payload;
};

/// Serialize atomically (tmp file + rename). Returns false on any I/O
/// failure; a pre-existing file under `path` is never left half-written.
bool save_state_file(const StateBlob& b, const std::string& path);

/// Load and fully validate. On failure returns nullopt and (when `status`
/// is non-null) the precise reason — malformed, truncated and bit-flipped
/// files are all rejected, never misread.
std::optional<StateBlob> load_state_file(const std::string& path,
                                         IoStatus* status = nullptr);

/// Append-only little-endian serialization helpers for payloads.
inline void put_bytes(std::vector<char>& out, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  out.insert(out.end(), c, c + n);
}
inline void put_u32(std::vector<char>& out, std::uint32_t v) {
  put_bytes(out, &v, sizeof v);
}
inline void put_u64(std::vector<char>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof v);
}
inline void put_f64(std::vector<char>& out, double v) {
  put_bytes(out, &v, sizeof v);
}

/// Bounds-checked cursor over a payload; any read past the end latches a
/// failure instead of touching memory.
struct StateReader {
  const char* p;
  std::size_t left;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0.0;
    take(&v, sizeof v);
    return v;
  }
};

}  // namespace pmpl
