#pragma once
/// \file stats.hpp
/// Scalar summary statistics used throughout the load-balancing analysis.
///
/// The paper's central imbalance measure is the coefficient of variation
/// (CV = sigma / mu) of per-processor load; `Summary` computes it in one pass.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

namespace pmpl {

/// One-pass summary of a sample: n, mean, population stddev, min, max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  /// Coefficient of variation sigma/mu; 0 for an empty or zero-mean sample.
  double cv() const noexcept { return mean != 0.0 ? stddev / mean : 0.0; }

  /// max/mean imbalance factor (1.0 = perfectly balanced); 0 if empty.
  double imbalance() const noexcept { return mean != 0.0 ? max / mean : 0.0; }
};

/// Compute a `Summary` over `values` (Welford's algorithm).
inline Summary summarize(std::span<const double> values) noexcept {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  s.min = values[0];
  s.max = values[0];
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t k = 0;
  for (double v : values) {
    ++k;
    const double delta = v - mean;
    mean += delta / static_cast<double>(k);
    m2 += delta * (v - mean);
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.sum += v;
  }
  s.mean = mean;
  s.stddev = std::sqrt(m2 / static_cast<double>(s.n));
  return s;
}

}  // namespace pmpl
