#pragma once
/// \file table.hpp
/// Aligned-column text table used by the bench harnesses to print the rows
/// and series that regenerate each figure of the paper.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pmpl {

/// Collects rows of string cells and prints them with aligned columns.
/// Numeric helpers format with a fixed precision so figure series line up.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) {
    rows_.push_back(std::move(header));
  }

  /// Begin a new row; append cells with `cell()` / `num()`.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  TextTable& cell(std::string s) {
    rows_.back().push_back(std::move(s));
    return *this;
  }

  TextTable& num(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
  }

  TextTable& num(std::uint64_t v) { return cell(std::to_string(v)); }
  TextTable& num(int v) { return cell(std::to_string(v)); }

  /// Render with two-space gutters and a rule under the header.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths;
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (widths.size() <= c) widths.resize(c + 1, 0);
        widths[c] = std::max(widths[c], row[c].size());
      }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << rows_[r][c];
      }
      os << '\n';
      if (r == 0) {
        std::size_t total = 0;
        for (std::size_t w : widths) total += w + 2;
        os << std::string(total, '-') << '\n';
      }
    }
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmpl
