#pragma once
/// \file timer.hpp
/// Wall-clock timer for phase instrumentation and bench harnesses.

#include <chrono>

namespace pmpl {

/// Monotonic wall-clock stopwatch. `elapsed_s()` may be called repeatedly;
/// `restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals (phase timers).
class AccumTimer {
 public:
  void start() noexcept { timer_.restart(); }
  void stop() noexcept { total_s_ += timer_.elapsed_s(); }
  double total_s() const noexcept { return total_s_; }
  void reset() noexcept { total_s_ = 0.0; }

 private:
  WallTimer timer_;
  double total_s_ = 0.0;
};

}  // namespace pmpl
