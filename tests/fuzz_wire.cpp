// libFuzzer entry for the two external input surfaces of the transport
// stack: the Frame wire codec and the fault-plan JSON parser. Built only
// when -DPMPL_FUZZ=ON (clang with -fsanitize=fuzzer); the deterministic
// seeded variants of the same properties run in every CI build as
// FrameCodecFuzz / FaultIoFuzz in test_transport.cpp.
//
//   $ cmake -DPMPL_FUZZ=ON .. && cmake --build . --target fuzz_wire
//   $ ./tests/fuzz_wire -max_len=4096 corpus/
//
// Input layout: first byte selects the surface (even = codec, odd = JSON);
// the rest is the payload under test.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/fault_io.hpp"
#include "runtime/transport.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 1) return 0;
  const bool codec = (data[0] & 1) == 0;
  ++data;
  --size;

  if (codec) {
    pmpl::runtime::Frame f;
    if (pmpl::runtime::decode_frame_payload(data, size, f)) {
      // Accepted frames must re-encode to exactly the bytes decoded
      // (after the length prefix) — the codec is a bijection on its
      // accepted set.
      std::vector<std::uint8_t> wire;
      pmpl::runtime::encode_frame(f, wire);
      if (wire.size() - 4 != size) __builtin_trap();
      for (std::size_t i = 0; i < size; ++i)
        if (wire[4 + i] != data[i]) __builtin_trap();
    }
    return 0;
  }

  const std::string text(reinterpret_cast<const char*>(data), size);
  pmpl::runtime::FaultPlan plan;
  std::string err;
  if (!pmpl::runtime::parse_fault_plan(text, plan, err)) {
    if (err.empty()) __builtin_trap();  // rejection without a diagnostic
    return 0;
  }
  // Accepted plans must satisfy the documented bounds.
  for (const auto& l : plan.links)
    if (l.drop_prob < 0.0 || l.drop_prob > 1.0 || l.from_s > l.until_s)
      __builtin_trap();
  for (const auto& t : plan.tokens)
    if (t.drop_prob < 0.0 || t.drop_prob > 1.0) __builtin_trap();
  for (const auto& p : plan.pauses)
    if (p.from_s > p.until_s) __builtin_trap();
  for (const auto& p : plan.partitions)
    if (p.ranks.empty() || p.from_s > p.until_s) __builtin_trap();
  return 0;
}
