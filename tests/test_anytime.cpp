// Tests for the anytime execution layer: deadlines and cooperative
// cancellation, graceful degradation of the parallel builders, and
// checkpoint/resume (including the bit-equivalence property: a build
// interrupted anywhere and resumed finishes identical to an uninterrupted
// one).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/anytime.hpp"
#include "core/parallel_build.hpp"
#include "core/parallel_build_rrt.hpp"
#include "env/builders.hpp"
#include "graph/tree_utils.hpp"
#include "runtime/cancel.hpp"
#include "runtime/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pmpl {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

/// Bit-level roadmap equality: vertices (region + every config value, in
/// id order) and adjacency (neighbor ids + edge lengths, in stored order).
void expect_identical_roadmaps(const planner::Roadmap& a,
                               const planner::Roadmap& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex(v).region, b.vertex(v).region) << "vertex " << v;
    ASSERT_EQ(a.vertex(v).cfg.size(), b.vertex(v).cfg.size());
    for (std::size_t i = 0; i < a.vertex(v).cfg.size(); ++i)
      EXPECT_DOUBLE_EQ(a.vertex(v).cfg[i], b.vertex(v).cfg[i])
          << "vertex " << v << " value " << i;
    const auto ea = a.edges_of(v);
    const auto eb = b.edges_of(v);
    ASSERT_EQ(ea.size(), eb.size()) << "vertex " << v;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].to, eb[i].to) << "vertex " << v << " edge " << i;
      EXPECT_DOUBLE_EQ(ea[i].prop.length, eb[i].prop.length)
          << "vertex " << v << " edge " << i;
    }
  }
}

// --- cancel token / deadline ------------------------------------------------

TEST(Cancel, TokenLatchesOnExplicitRequest) {
  runtime::CancelToken t;
  EXPECT_FALSE(t.stop_requested());
  EXPECT_FALSE(t.cancel_requested());
  t.request_cancel();
  EXPECT_TRUE(t.stop_requested());
  EXPECT_TRUE(t.cancel_requested());
  EXPECT_TRUE(t.stop_requested());  // latched
}

TEST(Cancel, DeadlineExpiresAndLatches) {
  runtime::CancelToken t(runtime::Deadline::after_ms(1.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(t.stop_requested());
  EXPECT_FALSE(t.cancel_requested());  // deadline, not explicit cancel
}

TEST(Cancel, NeverDeadlineNeverFires) {
  const runtime::CancelToken t(runtime::Deadline::never());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_EQ(t.deadline().remaining_s(),
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(runtime::stop_requested(nullptr));
}

TEST(Cancel, ExpiredDeadlineReportsZeroRemaining) {
  const auto d = runtime::Deadline::after_s(-1.0);
  EXPECT_TRUE(d.armed());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_s(), 0.0);
}

// --- cancel-aware scheduler loop --------------------------------------------

TEST(Cancel, ParallelForCancellableRunsEverythingWithoutSignal) {
  runtime::Scheduler sched(4);
  runtime::CancelToken token;
  std::atomic<std::size_t> ran{0};
  const bool complete = runtime::parallel_for_cancellable(
      sched, 1000, [&](std::size_t) { ++ran; }, token);
  EXPECT_TRUE(complete);
  EXPECT_EQ(ran.load(), 1000u);
}

TEST(Cancel, ParallelForCancellableCutsShortOnPreCancelled) {
  runtime::Scheduler sched(4);
  runtime::CancelToken token;
  token.request_cancel();
  std::atomic<std::size_t> ran{0};
  const bool complete = runtime::parallel_for_cancellable(
      sched, 10000, [&](std::size_t) { ++ran; }, token);
  EXPECT_FALSE(complete);
  EXPECT_LT(ran.load(), 10000u);
}

TEST(Cancel, ParallelForCancellableStopsMidFlight) {
  runtime::Scheduler sched(4);
  runtime::CancelToken token;
  std::atomic<std::size_t> ran{0};
  const bool complete = runtime::parallel_for_cancellable(
      sched, 100000,
      [&](std::size_t i) {
        if (i == 50) token.request_cancel();
        ++ran;
      },
      token, 1);
  EXPECT_FALSE(complete);
  // Every index either ran or was dropped — no double execution either way.
  EXPECT_LT(ran.load(), 100000u);
}

// --- graceful degradation ---------------------------------------------------

TEST(AnytimePrm, PreCancelledTokenYieldsEmptyWellFormedResult) {
  const auto e = env::small_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), 27, false);
  runtime::CancelToken token;
  token.request_cancel();
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 4096;
  cfg.workers = 4;
  cfg.anytime.cancel = &token;
  const auto r = core::parallel_build_prm(*e, grid, cfg);
  EXPECT_EQ(r.degradation.regions_completed, 0u);
  EXPECT_EQ(r.degradation.regions_total, 27u);
  EXPECT_TRUE(r.degradation.cancelled);
  EXPECT_FALSE(r.degradation.complete());
  EXPECT_EQ(r.roadmap.num_vertices(), 0u);
  EXPECT_EQ(r.roadmap.num_edges(), 0u);
}

TEST(AnytimePrm, DeadlineOverrunIsBounded) {
  const auto e = env::med_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), 64, false);
  const double deadline_ms = 50.0;
  const runtime::CancelToken token(runtime::Deadline::after_ms(deadline_ms));
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 1 << 17;  // far more work than the deadline allows
  cfg.workers = 4;
  cfg.seed = 71;
  cfg.anytime.cancel = &token;
  WallTimer timer;
  const auto r = core::parallel_build_prm(*e, grid, cfg);
  const double elapsed_s = timer.elapsed_s();
  // Generous margin: the overrun past the deadline is bounded by one
  // granule (one region's build), which even under sanitizers is far
  // below this.
  EXPECT_LT(elapsed_s, deadline_ms * 1e-3 + 10.0);
  EXPECT_TRUE(r.degradation.cancelled);
  EXPECT_LT(r.degradation.regions_completed, r.degradation.regions_total);
  // The partial result is well-formed: every merged vertex belongs to a
  // completed region and every edge endpoint is a real vertex.
  std::size_t merged = 0;
  for (const auto& rv : r.region_vertices) merged += rv.size();
  EXPECT_EQ(merged, r.roadmap.num_vertices());
  for (graph::VertexId v = 0; v < r.roadmap.num_vertices(); ++v)
    for (const auto& he : r.roadmap.edges_of(v))
      EXPECT_LT(he.to, r.roadmap.num_vertices());
}

TEST(AnytimeRrt, CancelMidBuildYieldsWellFormedForest) {
  const auto e = env::mixed(0.30);
  const core::RadialRegions regions({50, 50, 50}, 45.0, 64, 4, 81, false);
  Xoshiro256ss rng(82);
  const auto root = e->space().at_position({50, 50, 50}, rng);
  runtime::CancelToken token;
  core::ParallelRrtConfig cfg;
  cfg.total_nodes = 1 << 14;
  cfg.workers = 4;
  cfg.seed = 83;
  cfg.anytime.cancel = &token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.request_cancel();
  });
  const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
  canceller.join();
  EXPECT_LE(r.degradation.regions_completed, r.degradation.regions_total);
  EXPECT_TRUE(graph::is_forest(r.tree));
  for (graph::VertexId v = 0; v < r.tree.num_vertices(); ++v)
    for (const auto& he : r.tree.edges_of(v))
      EXPECT_LT(he.to, r.tree.num_vertices());
}

// --- checkpoint file format -------------------------------------------------

core::Checkpoint sample_checkpoint() {
  core::Checkpoint c;
  c.kind = core::kCheckpointKindPrm;
  c.fingerprint = 0x1234abcd5678ef09ull;
  c.seed = 42;
  c.num_regions = 8;
  for (std::uint32_t r : {1u, 4u, 6u}) {
    core::RegionSnapshot s;
    s.region = r;
    for (int i = 0; i < 5; ++i) {
      cspace::Config cfg;
      cfg.push_back(0.5 * r + i);
      cfg.push_back(-1.25 * i);
      cfg.push_back(3.0);
      s.configs.push_back(cfg);
    }
    s.edges.push_back({0, 1, 1.5});
    s.edges.push_back({1, 4, 2.25});
    s.stats.samples_attempted = 100 + r;
    s.stats.samples_valid = 50 + r;
    c.regions.push_back(std::move(s));
  }
  return c;
}

TEST(CheckpointIo, RoundTripPreservesEverything) {
  const auto path = temp_path("ckpt_roundtrip.bin");
  const auto c = sample_checkpoint();
  ASSERT_TRUE(core::save_checkpoint_file(c, path));
  IoStatus status = IoStatus::kOk;
  const auto loaded = core::load_checkpoint_file(path, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ(loaded->kind, c.kind);
  EXPECT_EQ(loaded->fingerprint, c.fingerprint);
  EXPECT_EQ(loaded->seed, c.seed);
  EXPECT_EQ(loaded->num_regions, c.num_regions);
  ASSERT_EQ(loaded->regions.size(), c.regions.size());
  for (std::size_t i = 0; i < c.regions.size(); ++i) {
    const auto& a = c.regions[i];
    const auto& b = loaded->regions[i];
    EXPECT_EQ(a.region, b.region);
    ASSERT_EQ(a.configs.size(), b.configs.size());
    for (std::size_t j = 0; j < a.configs.size(); ++j) {
      ASSERT_EQ(a.configs[j].size(), b.configs[j].size());
      for (std::size_t k = 0; k < a.configs[j].size(); ++k)
        EXPECT_DOUBLE_EQ(a.configs[j][k], b.configs[j][k]);
    }
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t j = 0; j < a.edges.size(); ++j) {
      EXPECT_EQ(a.edges[j].u, b.edges[j].u);
      EXPECT_EQ(a.edges[j].v, b.edges[j].v);
      EXPECT_DOUBLE_EQ(a.edges[j].length, b.edges[j].length);
    }
    EXPECT_EQ(a.stats.samples_attempted, b.stats.samples_attempted);
    EXPECT_EQ(a.stats.samples_valid, b.stats.samples_valid);
  }
  std::remove(path.c_str());
}

TEST(CheckpointIo, MissingFileIsOpenFailed) {
  IoStatus status = IoStatus::kOk;
  const auto loaded =
      core::load_checkpoint_file(temp_path("ckpt_nonexistent.bin"), &status);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOpenFailed);
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointIo, TruncationAtEveryBoundaryIsRejectedCleanly) {
  const auto path = temp_path("ckpt_trunc.bin");
  ASSERT_TRUE(core::save_checkpoint_file(sample_checkpoint(), path));
  const auto bytes = file_bytes(path);
  ASSERT_GT(bytes.size(), 64u);
  const auto cut = temp_path("ckpt_trunc_cut.bin");
  for (std::size_t n = 0; n < bytes.size(); n += 64) {
    write_bytes(cut, {bytes.begin(), bytes.begin() + n});
    IoStatus status = IoStatus::kOk;
    const auto loaded = core::load_checkpoint_file(cut, &status);
    EXPECT_FALSE(loaded.has_value()) << "prefix of " << n << " bytes loaded";
    EXPECT_NE(status, IoStatus::kOk) << "prefix of " << n << " bytes";
  }
  // One byte short of complete must also fail (footer-less payload).
  write_bytes(cut, {bytes.begin(), bytes.end() - 1});
  EXPECT_FALSE(core::load_checkpoint_file(cut).has_value());
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(CheckpointIo, BitFlipsAreRejectedCleanly) {
  const auto path = temp_path("ckpt_flip.bin");
  ASSERT_TRUE(core::save_checkpoint_file(sample_checkpoint(), path));
  const auto bytes = file_bytes(path);
  const auto flipped = temp_path("ckpt_flip_out.bin");
  // Flip one bit at a stride of positions covering header and payload.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    write_bytes(flipped, mutated);
    IoStatus status = IoStatus::kOk;
    const auto loaded = core::load_checkpoint_file(flipped, &status);
    EXPECT_FALSE(loaded.has_value()) << "bit flip at byte " << pos;
    EXPECT_NE(status, IoStatus::kOk) << "bit flip at byte " << pos;
  }
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

TEST(CheckpointIo, TrailingGarbageIsMalformed) {
  const auto path = temp_path("ckpt_trailing.bin");
  ASSERT_TRUE(core::save_checkpoint_file(sample_checkpoint(), path));
  auto bytes = file_bytes(path);
  bytes.push_back('x');
  write_bytes(path, bytes);
  IoStatus status = IoStatus::kOk;
  EXPECT_FALSE(core::load_checkpoint_file(path, &status).has_value());
  EXPECT_EQ(status, IoStatus::kMalformed);
  std::remove(path.c_str());
}

// --- resume safety ----------------------------------------------------------

TEST(AnytimePrm, ResumeRefusesMismatchedFingerprint) {
  const auto e = env::small_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), 27, false);
  const auto path = temp_path("ckpt_mismatch.bin");

  // Interrupt a build with one set of parameters to get a checkpoint.
  runtime::CancelToken token;
  token.request_cancel();
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 2048;
  cfg.workers = 2;
  cfg.seed = 91;
  cfg.anytime.cancel = &token;
  cfg.anytime.checkpoint_path = path;
  const auto partial = core::parallel_build_prm(*e, grid, cfg);
  ASSERT_TRUE(partial.degradation.checkpoint_written);

  // Resume with a different attempt budget: fingerprint mismatch, fresh
  // build, and the build still completes.
  core::ParallelPrmConfig cfg2;
  cfg2.total_attempts = 4096;  // different => different roadmap
  cfg2.workers = 2;
  cfg2.seed = 91;
  cfg2.anytime.checkpoint_path = path;
  cfg2.anytime.resume = true;
  const auto r = core::parallel_build_prm(*e, grid, cfg2);
  EXPECT_EQ(r.degradation.resume_status, IoStatus::kFingerprintMismatch);
  EXPECT_EQ(r.degradation.regions_restored, 0u);
  EXPECT_TRUE(r.degradation.complete());
  std::remove(path.c_str());
}

TEST(AnytimePrm, CheckpointRemovedOnceBuildCompletes) {
  const auto e = env::small_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), 27, false);
  const auto path = temp_path("ckpt_removed.bin");
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 2048;
  cfg.workers = 4;
  cfg.anytime.checkpoint_path = path;
  cfg.anytime.checkpoint_every = 4;  // periodic snapshots during the build
  const auto r = core::parallel_build_prm(*e, grid, cfg);
  EXPECT_TRUE(r.degradation.complete());
  EXPECT_FALSE(r.degradation.checkpoint_written);
  std::ifstream check(path);
  EXPECT_FALSE(check.good()) << "checkpoint left behind after completion";
}

// --- checkpoint/resume determinism (the tentpole property) ------------------

TEST(AnytimePrm, InterruptedAndResumedBuildIsBitIdentical) {
  const auto e = env::med_cube();
  const auto grid = core::RegionGrid::make_auto(
      e->space().position_bounds(), 64, false);
  const std::size_t attempts = 1 << 15;
  const std::uint64_t seed = 101;

  core::ParallelPrmConfig ref_cfg;
  ref_cfg.total_attempts = attempts;
  ref_cfg.workers = 4;
  ref_cfg.seed = seed;
  const auto reference = core::parallel_build_prm(*e, grid, ref_cfg);
  ASSERT_TRUE(reference.degradation.complete());

  // Interrupt at varying points (different deadlines), chaining resumes
  // through the same checkpoint file until the build completes. Whatever
  // subset each interruption leaves behind, the final roadmap must be
  // bit-identical to the uninterrupted reference.
  const auto path = temp_path("ckpt_determinism_prm.bin");
  std::remove(path.c_str());
  const double deadlines_ms[] = {2.0, 10.0, 40.0, 160.0};
  bool complete = false;
  std::size_t restored_total = 0;
  std::size_t runs = 0;
  for (const double d : deadlines_ms) {
    ++runs;
    const runtime::CancelToken token(runtime::Deadline::after_ms(d));
    core::ParallelPrmConfig cfg;
    cfg.total_attempts = attempts;
    cfg.workers = 4;
    cfg.seed = seed;
    cfg.anytime.cancel = &token;
    cfg.anytime.checkpoint_path = path;
    cfg.anytime.checkpoint_every = 4;
    cfg.anytime.resume = true;
    const auto r = core::parallel_build_prm(*e, grid, cfg);
    restored_total += r.degradation.regions_restored;
    if (r.degradation.complete()) {
      complete = true;
      expect_identical_roadmaps(r.roadmap, reference.roadmap);
      break;
    }
  }
  if (!complete) {
    // Finish without a deadline; resume from whatever the attempts left.
    core::ParallelPrmConfig cfg;
    cfg.total_attempts = attempts;
    cfg.workers = 4;
    cfg.seed = seed;
    cfg.anytime.checkpoint_path = path;
    cfg.anytime.resume = true;
    const auto r = core::parallel_build_prm(*e, grid, cfg);
    ASSERT_TRUE(r.degradation.complete());
    expect_identical_roadmaps(r.roadmap, reference.roadmap);
  }
  // Unless the whole build fit inside the very first deadline, the chain
  // must have actually restored regions from a checkpoint — otherwise the
  // bit-equivalence property was tested vacuously.
  if (runs > 1 || !complete) EXPECT_GT(restored_total, 0u);
  std::remove(path.c_str());
}

TEST(AnytimeRrt, InterruptedAndResumedBuildIsBitIdentical) {
  const auto e = env::mixed(0.30);
  const core::RadialRegions regions({50, 50, 50}, 45.0, 48, 4, 111, false);
  Xoshiro256ss rng(112);
  const auto root = e->space().at_position({50, 50, 50}, rng);
  const std::size_t nodes = 1 << 13;
  const std::uint64_t seed = 113;

  core::ParallelRrtConfig ref_cfg;
  ref_cfg.total_nodes = nodes;
  ref_cfg.workers = 4;
  ref_cfg.seed = seed;
  const auto reference = core::parallel_build_rrt(*e, regions, root, ref_cfg);
  ASSERT_TRUE(reference.degradation.complete());

  const auto path = temp_path("ckpt_determinism_rrt.bin");
  std::remove(path.c_str());
  const double deadlines_ms[] = {2.0, 10.0, 40.0, 160.0};
  bool complete = false;
  for (const double d : deadlines_ms) {
    const runtime::CancelToken token(runtime::Deadline::after_ms(d));
    core::ParallelRrtConfig cfg;
    cfg.total_nodes = nodes;
    cfg.workers = 4;
    cfg.seed = seed;
    cfg.anytime.cancel = &token;
    cfg.anytime.checkpoint_path = path;
    cfg.anytime.checkpoint_every = 4;
    cfg.anytime.resume = true;
    const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
    if (r.degradation.complete()) {
      complete = true;
      expect_identical_roadmaps(r.tree, reference.tree);
      EXPECT_TRUE(graph::is_forest(r.tree));
      break;
    }
  }
  if (!complete) {
    core::ParallelRrtConfig cfg;
    cfg.total_nodes = nodes;
    cfg.workers = 4;
    cfg.seed = seed;
    cfg.anytime.checkpoint_path = path;
    cfg.anytime.resume = true;
    const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
    ASSERT_TRUE(r.degradation.complete());
    expect_identical_roadmaps(r.tree, reference.tree);
    EXPECT_TRUE(graph::is_forest(r.tree));
  }
  std::remove(path.c_str());
}

// A PRM checkpoint must never resume an RRT build (kind mismatch).
TEST(AnytimeRrt, RefusesPrmCheckpoint) {
  const auto path = temp_path("ckpt_kind_mismatch.bin");
  auto c = sample_checkpoint();  // kind = PRM
  c.num_regions = 32;
  ASSERT_TRUE(core::save_checkpoint_file(c, path));

  const auto e = env::free_env();
  const core::RadialRegions regions({50, 50, 50}, 40.0, 32, 4, 121, false);
  Xoshiro256ss rng(122);
  const auto root = e->space().at_position({50, 50, 50}, rng);
  core::ParallelRrtConfig cfg;
  cfg.total_nodes = 512;
  cfg.workers = 2;
  cfg.anytime.checkpoint_path = path;
  cfg.anytime.resume = true;
  const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
  EXPECT_EQ(r.degradation.resume_status, IoStatus::kFingerprintMismatch);
  EXPECT_EQ(r.degradation.regions_restored, 0u);
  EXPECT_TRUE(r.degradation.complete());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pmpl
