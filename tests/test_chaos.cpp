// Tests for rank resurrection (DESIGN.md §5i): the durable checkpoint
// container, the seeded chaos-schedule generator, the supervisor's
// restart path (the ISSUE's end-to-end restart gate: every rank SIGKILLed
// at least once, staggered, and the union roadmap still bit-identical to
// the fault-free DES with zero duplicated executions), the deliberate
// zombie scenario (a SIGSTOPped rank superseded while frozen must be
// fenced on resume without corrupting the directory), a mini chaos soak,
// and the no-residue guarantee of the forked harness.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "loadbal/chaos.hpp"
#include "loadbal/ws_cluster.hpp"
#include "runtime/fault_io.hpp"
#include "loadbal/ws_engine.hpp"
#include "loadbal/ws_rank.hpp"

namespace pmpl {
namespace {

std::size_t tmp_residue() {
  DIR* d = ::opendir("/tmp");
  if (!d) return 0;
  std::size_t n = 0;
  while (dirent* e = ::readdir(d))
    if (std::strncmp(e->d_name, "pmpl_ws_", 8) == 0) ++n;
  ::closedir(d);
  return n;
}

std::uint64_t des_hash(std::uint64_t seed, const loadbal::ClusterItems& work,
                       std::uint32_t p) {
  loadbal::WsConfig wcfg;
  wcfg.seed = seed;
  wcfg.rand_k = 2;
  const auto des =
      loadbal::simulate_work_stealing(work.items, work.initial, p, wcfg);
  EXPECT_TRUE(des.terminated);
  return loadbal::roadmap_hash(seed, loadbal::completed_set(des));
}

// Duplicated executions across the final incarnations' lineage-spanning
// executed lists (the grant-ledger invariant the chaos harness pins).
std::uint64_t duplicate_executions(const loadbal::ClusterResult& r,
                                   std::size_t n) {
  std::vector<std::uint32_t> times(n, 0);
  for (std::size_t k = 0; k < r.ranks.size(); ++k) {
    if (k < r.reported.size() && !r.reported[k]) continue;
    for (std::uint32_t item : r.ranks[k].executed)
      if (item < n) ++times[item];
  }
  std::uint64_t dup = 0;
  for (std::uint32_t t : times)
    if (t > 1) dup += t - 1;
  return dup;
}

// --- durable checkpoint container --------------------------------------

TEST(RankCheckpoint, RoundTripsAndRejectsCorruption) {
  loadbal::RankCheckpoint c;
  c.rank = 2;
  c.generation = 3;
  c.fingerprint = 0xabcdef;
  c.rng_state[0] = 1;
  c.rng_state[3] = 4;
  c.queue = {1, 2};
  c.owner = {0, 1, 2, 2};
  c.done = {true, false, false, true};
  c.stolen = {false, true, false, false};
  c.death_known = {false, false, true};
  c.peer_gen = {0, 1, 0};
  c.executed = {3};
  c.ledger.push_back({1, 77, 42, {0, 2}});
  c.seen_grants = {9, 10};
  c.next_req_id = 100;
  c.next_grant_id = 200;
  c.busy_s = 1.5;
  c.counters[0] = 11;
  c.counters[13] = 13;

  const std::string path = "/tmp/pmpl_test_ckpt_roundtrip";
  ASSERT_TRUE(loadbal::save_rank_checkpoint(c, path));
  const auto back = loadbal::load_rank_checkpoint(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rank, c.rank);
  EXPECT_EQ(back->generation, c.generation);
  EXPECT_EQ(back->fingerprint, c.fingerprint);
  EXPECT_EQ(back->rng_state[3], 4u);
  EXPECT_EQ(back->queue, c.queue);
  EXPECT_EQ(back->owner, c.owner);
  EXPECT_EQ(back->done, c.done);
  EXPECT_EQ(back->death_known, c.death_known);
  EXPECT_EQ(back->peer_gen, c.peer_gen);
  ASSERT_EQ(back->ledger.size(), 1u);
  EXPECT_EQ(back->ledger[0].thief, 1u);
  EXPECT_EQ(back->ledger[0].grant_id, 77u);
  EXPECT_EQ(back->ledger[0].items, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(back->seen_grants, c.seen_grants);
  EXPECT_EQ(back->next_grant_id, 200u);
  EXPECT_DOUBLE_EQ(back->busy_s, 1.5);
  EXPECT_EQ(back->counters[13], 13u);

  // Flip one byte mid-file: the container checksum must reject it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 64, SEEK_SET);
  int b = std::fgetc(f);
  std::fseek(f, 64, SEEK_SET);
  std::fputc(b ^ 0x40, f);
  std::fclose(f);
  EXPECT_FALSE(loadbal::load_rank_checkpoint(path).has_value());
  ::unlink(path.c_str());
}

// --- seeded schedule generator -----------------------------------------

TEST(ChaosPlan, DeterministicAndBounded) {
  loadbal::ChaosConfig cfg;
  cfg.ranks = 4;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull, 12345ull}) {
    const auto a = loadbal::make_chaos_plan(cfg, seed);
    const auto b = loadbal::make_chaos_plan(cfg, seed);
    EXPECT_EQ(runtime::fault_plan_to_json(a), runtime::fault_plan_to_json(b));

    std::vector<std::uint32_t> kills(cfg.ranks, 0);
    for (const auto& c : a.crashes) {
      ASSERT_LT(c.rank, cfg.ranks);
      EXPECT_GT(c.at_s, 0.0);
      EXPECT_LE(c.at_s, cfg.horizon_s);
      ++kills[c.rank];
    }
    for (std::uint32_t k : kills) EXPECT_LE(k, cfg.max_kills_per_rank);
    // A killed rank is never also paused (ambiguous schedules excluded).
    for (const auto& pz : a.pauses) EXPECT_EQ(kills[pz.rank], 0u);
    for (const auto& pt : a.partitions) {
      EXPECT_FALSE(pt.ranks.empty());
      EXPECT_LT(pt.ranks.size(), cfg.ranks);
    }
  }
  // Different seeds diverge (probabilistically certain over 5 seeds).
  EXPECT_NE(runtime::fault_plan_to_json(loadbal::make_chaos_plan(cfg, 1)),
            runtime::fault_plan_to_json(loadbal::make_chaos_plan(cfg, 2)));
}

// --- the end-to-end restart gate ---------------------------------------

// Every rank SIGKILLed at least once, staggered, with the supervisor
// restarting each from its checkpoint: the union roadmap hash must be
// bit-identical to the fault-free DES run and no region may execute
// twice (asserted from the lineage executed lists / grant ledger).
TEST(RestartGate, EveryRankKilledOnceRejoinsAndMatchesDes) {
  const std::uint32_t p = 4, n = 64;
  const std::uint64_t seed = 4242;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 8.0;
  cfg.timeout_s = 60.0;
  cfg.restart.enabled = true;
  cfg.faults.seed = 7;
  for (std::uint32_t r = 0; r < p; ++r)
    cfg.faults.crash(r, 0.03 + 0.03 * r);

  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  for (std::uint32_t r = 0; r < p; ++r) {
    EXPECT_TRUE(real.killed[r]) << "rank " << r << " kill never landed";
    EXPECT_GE(real.restarts[r], 1u) << "rank " << r;
    EXPECT_TRUE(real.reported[r]) << "rank " << r;
  }
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);
  EXPECT_EQ(real.roadmap, des_hash(seed, work, p));
  EXPECT_EQ(duplicate_executions(real, n), 0u);
}

// A restarted incarnation resumes from its checkpoint rather than
// starting cold: the final incarnation reports restored state and its
// lineage executed list is consistent with the no-duplicate invariant.
TEST(RestartGate, ReplacementRestoresFromCheckpoint) {
  const std::uint32_t p = 3, n = 48;
  const std::uint64_t seed = 11;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 8.0;
  cfg.timeout_s = 60.0;
  cfg.restart.enabled = true;
  cfg.faults.seed = 3;
  // Rank 0 starts with half the regions: kill it mid-run, once.
  cfg.faults.crash(0, 0.06);

  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  ASSERT_TRUE(real.killed[0]);
  ASSERT_TRUE(real.reported[0]);
  EXPECT_EQ(real.generations[0], 1u);
  EXPECT_EQ(real.ranks[0].generation, 1u);
  // 0.06s in, rank 0 has executed and checkpointed something (checkpoints
  // are written before every completion broadcast), so the replacement
  // restores rather than cold-starts.
  EXPECT_TRUE(real.ranks[0].restored);
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);
  EXPECT_EQ(real.roadmap, des_hash(seed, work, p));
  EXPECT_EQ(duplicate_executions(real, n), 0u);
}

// --- zombie fencing ----------------------------------------------------

// The deliberate-zombie scenario: a rank is SIGSTOPped long enough that
// the supervisor suspects it (stalled checkpoint) and forks a replacement
// WITHOUT killing it. When the original resumes, its frames carry the old
// generation — every peer must reject them — and it must exit cleanly
// (fenced by a death notice naming it, or superseded by an epoch fence)
// without corrupting the directory.
TEST(ZombieFencing, ResumedStaleIncarnationIsNeutralized) {
  const std::uint32_t p = 3, n = 96;
  const std::uint64_t seed = 77;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  // Stretch simulated time so the workload outlives the zombie window.
  cfg.rank.time_scale = 8.0;
  cfg.rank.run_timeout_s = 10.0;
  cfg.timeout_s = 90.0;
  cfg.restart.enabled = true;
  cfg.restart.suspect_after_s = 0.15;
  cfg.faults.seed = 5;
  // Freeze rank 2 (a thief) for ~1.3 wall seconds: long enough for the
  // suspect path to fork generation 1 while it is stopped.
  cfg.faults.pause(2, 0.025, 0.19);

  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  // The replacement was forked off the stalled checkpoint...
  EXPECT_GE(real.restarts[2], 1u);
  EXPECT_GE(real.generations[2], 1u);
  ASSERT_TRUE(real.reported[2]);
  EXPECT_GE(real.ranks[2].generation, 1u);
  // ...and the resumed original was neutralized — counted when it exits
  // cleanly (epoch-fenced or self-fenced on a death notice naming its
  // stale generation). Any frame it managed to emit first was rejected by
  // generation at the peers' engines or refused at their transports.
  std::uint64_t stale = 0;
  for (std::uint32_t r = 0; r < p; ++r)
    if (real.reported[r])
      stale += real.ranks[r].stale_frames_rejected +
               real.ranks[r].transport.frames_stale;
  EXPECT_TRUE(real.zombies_fenced >= 1 || stale > 0)
      << "zombie left no trace: fenced=" << real.zombies_fenced
      << " stale=" << stale;
  // The directory survived the zombie: complete, correct, no duplicates.
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);
  EXPECT_EQ(real.roadmap, des_hash(seed, work, p));
  EXPECT_EQ(duplicate_executions(real, n), 0u);
}

// A rejoiner reviving into a mesh that already finished and exited: rank
// 1 is frozen almost immediately, so rank 0 death-notices it (~0.2s of
// missed heartbeats), reclaims its regions, completes all of them, and
// terminates as a ring of one — the whole mesh is gone well before the
// frozen original is SIGKILLed at t=2s. The replacement forked off that
// kill revives into a fully dead cluster: no kDirSync reply will ever
// come, so it must rebuild the finished state from the union of the dead
// peers' durable checkpoints (completions are checkpointed *before* their
// kRegionDone broadcast) rather than trust its own stale restore — which
// would re-execute regions rank 0 already did and break the
// zero-duplicate-execution guarantee. It then detects every peer dead,
// declares termination as a ring of one, and exits terminated.
TEST(RestartGate, RejoinIntoFinishedMeshStaysClean) {
  const std::uint32_t p = 2, n = 24;
  const std::uint64_t seed = 404;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 8.0;
  cfg.timeout_s = 60.0;
  cfg.restart.enabled = true;
  cfg.faults.seed = 3;
  // Freeze rank 1 before it gets anywhere, and keep it frozen until the
  // planned SIGKILL — it never resumes, so the kill lands on the stopped
  // process and the replacement is the only live process in the cluster.
  cfg.faults.pause(1, 0.01, 30.0);
  cfg.faults.crash(1, 2.0);

  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  ASSERT_TRUE(real.killed[1]);
  EXPECT_GE(real.restarts[1], 1u);
  ASSERT_TRUE(real.reported[1]);
  EXPECT_GE(real.ranks[1].generation, 1u);
  // The replacement learned the finished state from the durable
  // checkpoints instead of re-executing its stale queue, and still
  // detected termination with every peer dead.
  EXPECT_TRUE(real.ranks[1].terminated);
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);
  EXPECT_EQ(real.roadmap, des_hash(seed, work, p));
  EXPECT_EQ(duplicate_executions(real, n), 0u);
}

// --- mini chaos soak ---------------------------------------------------

// A scaled-down version of the CI chaos-soak job (which runs >= 20
// schedules): a handful of seeded randomized schedules must all hold the
// invariant suite, and the soak must leak nothing.
TEST(ChaosSoak, RandomSchedulesHoldInvariants) {
  loadbal::ChaosConfig cfg;
  cfg.seed = 0x50a1cULL;
  cfg.schedules = 3;
  cfg.ranks = 3;
  cfg.regions = 36;
  cfg.cluster_timeout_s = 45.0;
  const auto soak = loadbal::run_chaos_soak(cfg);
  for (const auto& s : soak.schedules)
    EXPECT_TRUE(s.ok) << "schedule " << s.index << " (seed "
                      << s.schedule_seed << "): " << s.error;
  EXPECT_TRUE(soak.no_leaks)
      << "fds " << soak.fds_before << "->" << soak.fds_after << ", tmp "
      << soak.tmp_before << "->" << soak.tmp_after;
  EXPECT_TRUE(soak.ok);
}

// --- no residue --------------------------------------------------------

// An interrupted or faulty run must not leak /tmp/pmpl_ws_* directories,
// sockets or result files; a SIGKILL-heavy restart run exercises every
// file type the harness creates (sockets, per-generation results,
// checkpoints).
TEST(Cleanup, FaultyRunsLeaveNoTmpResidue) {
  const std::size_t before = tmp_residue();
  const std::uint32_t p = 3, n = 32;
  const std::uint64_t seed = 9;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 6.0;
  cfg.timeout_s = 60.0;
  cfg.restart.enabled = true;
  cfg.faults.seed = 2;
  cfg.faults.crash(1, 0.04);
  const auto real = loadbal::run_ws_cluster(cfg);
  EXPECT_TRUE(real.ok) << real.error;
  EXPECT_LE(tmp_residue(), before);
}

}  // namespace
}  // namespace pmpl
