// Tests for collision/: shape dispatch, BVH, environment checker.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "collision/bvh.hpp"
#include "collision/checker.hpp"
#include "collision/shape.hpp"
#include "util/rng.hpp"

namespace pmpl::collision {
namespace {

using geo::Aabb;
using geo::Mat3;
using geo::Obb;
using geo::Quat;
using geo::Ray;
using geo::Segment;
using geo::Sphere;
using geo::Vec3;

// --- shape dispatch ---------------------------------------------------

TEST(Shape, BoundsOfEveryVariant) {
  EXPECT_EQ(bounds_of(ObstacleShape{Aabb{{0, 0, 0}, {1, 1, 1}}}).hi,
            (Vec3{1, 1, 1}));
  const auto sb = bounds_of(ObstacleShape{Sphere{{0, 0, 0}, 2}});
  EXPECT_EQ(sb.lo, (Vec3{-2, -2, -2}));
  const auto ob =
      bounds_of(ObstacleShape{Obb{{0, 0, 0}, {1, 1, 1}, Mat3::identity()}});
  EXPECT_EQ(ob.hi, (Vec3{1, 1, 1}));
  const auto tb = bounds_of(
      ObstacleShape{Triangle{{Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 2, 3}}}});
  EXPECT_EQ(tb.hi, (Vec3{1, 2, 3}));
}

TEST(Shape, ContainsPointPerVariant) {
  EXPECT_TRUE(contains(ObstacleShape{Aabb{{0, 0, 0}, {1, 1, 1}}},
                       {0.5, 0.5, 0.5}));
  EXPECT_FALSE(contains(ObstacleShape{Aabb{{0, 0, 0}, {1, 1, 1}}},
                        {1.5, 0.5, 0.5}));
  EXPECT_TRUE(contains(ObstacleShape{Sphere{{0, 0, 0}, 1}}, {0.5, 0, 0}));
  // Triangles have zero volume.
  EXPECT_FALSE(contains(
      ObstacleShape{Triangle{{Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}}}},
      {0.2, 0.2, 0.0}));
}

TEST(Shape, ObbBodyVsObstacles) {
  const Obb body{{0, 0, 0}, {0.5, 0.5, 0.5}, Mat3::identity()};
  EXPECT_TRUE(hits(body, ObstacleShape{Aabb{{0.4, 0, 0}, {2, 1, 1}}}));
  EXPECT_FALSE(hits(body, ObstacleShape{Aabb{{2, 2, 2}, {3, 3, 3}}}));
  EXPECT_TRUE(hits(body, ObstacleShape{Sphere{{1.2, 0, 0}, 0.8}}));
  EXPECT_FALSE(hits(body, ObstacleShape{Sphere{{3, 0, 0}, 0.8}}));
}

TEST(Shape, SphereBodyVsObstacles) {
  const Sphere body{{0, 0, 0}, 1.0};
  EXPECT_TRUE(hits(body, ObstacleShape{Obb{{1.5, 0, 0},
                                           {0.6, 0.6, 0.6},
                                           Mat3::identity()}}));
  EXPECT_FALSE(hits(body, ObstacleShape{Obb{{3, 0, 0},
                                            {0.6, 0.6, 0.6},
                                            Mat3::identity()}}));
}

TEST(Shape, SegmentVsTriangleObstacle) {
  const ObstacleShape tri =
      Triangle{{Vec3{0, 0, 1}, Vec3{2, 0, 1}, Vec3{0, 2, 1}}};
  EXPECT_TRUE(hits(Segment{{0.3, 0.3, 0}, {0.3, 0.3, 2}}, tri));
  EXPECT_FALSE(hits(Segment{{0.3, 0.3, 0}, {0.3, 0.3, 0.5}}, tri));
}

TEST(Shape, RigidBodyFactoryAndRadius) {
  const RigidBody box = RigidBody::box({1, 2, 3});
  EXPECT_EQ(box.boxes.size(), 1u);
  EXPECT_NEAR(box.bounding_radius(), std::sqrt(14.0), 1e-12);
  const RigidBody ball = RigidBody::sphere(2.5);
  EXPECT_EQ(ball.spheres.size(), 1u);
  EXPECT_DOUBLE_EQ(ball.bounding_radius(), 2.5);
}

// --- BVH ----------------------------------------------------------------

std::vector<ObstacleShape> random_boxes(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<ObstacleShape> obs;
  obs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 c{rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.uniform(0, 100)};
    const Vec3 h{rng.uniform(0.5, 4), rng.uniform(0.5, 4),
                 rng.uniform(0.5, 4)};
    obs.push_back(Aabb::from_center(c, h));
  }
  return obs;
}

TEST(Bvh, EmptyTree) {
  Bvh bvh;
  EXPECT_TRUE(bvh.empty());
  EXPECT_FALSE(bvh.for_overlaps(Aabb{{0, 0, 0}, {1, 1, 1}},
                                [](std::uint32_t) { return true; }));
}

TEST(Bvh, SingleShape) {
  std::vector<ObstacleShape> obs{Aabb{{0, 0, 0}, {1, 1, 1}}};
  Bvh bvh;
  bvh.build(obs);
  int visits = 0;
  bvh.for_overlaps(Aabb{{0.5, 0.5, 0.5}, {2, 2, 2}}, [&](std::uint32_t i) {
    EXPECT_EQ(i, 0u);
    ++visits;
    return false;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Bvh, OverlapQueryMatchesLinearScan) {
  const auto obs = random_boxes(300, 31);
  Bvh bvh;
  bvh.build(obs);
  Xoshiro256ss rng(32);
  for (int q = 0; q < 200; ++q) {
    const Vec3 c{rng.uniform(0, 100), rng.uniform(0, 100),
                 rng.uniform(0, 100)};
    const Aabb query = Aabb::from_center(c, {5, 5, 5});
    std::set<std::uint32_t> from_bvh;
    bvh.for_overlaps(query, [&](std::uint32_t i) {
      from_bvh.insert(i);
      return false;  // exhaustive
    });
    std::set<std::uint32_t> from_scan;
    for (std::uint32_t i = 0; i < obs.size(); ++i)
      if (bounds_of(obs[i]).overlaps(query)) from_scan.insert(i);
    EXPECT_EQ(from_bvh, from_scan) << "query " << q;
  }
}

TEST(Bvh, EarlyStopReturnsTrue) {
  const auto obs = random_boxes(100, 33);
  Bvh bvh;
  bvh.build(obs);
  const bool stopped = bvh.for_overlaps(
      bvh.bounds(), [](std::uint32_t) { return true; });
  EXPECT_TRUE(stopped);
}

TEST(Bvh, RaycastFindsNearestHit) {
  std::vector<ObstacleShape> obs{Aabb{{10, -1, -1}, {12, 1, 1}},
                                 Aabb{{5, -1, -1}, {6, 1, 1}},
                                 Aabb{{20, -1, -1}, {22, 1, 1}}};
  Bvh bvh;
  bvh.build(obs);
  const Ray ray{{0, 0, 0}, {1, 0, 0}};
  const auto t = bvh.raycast(ray, [&](std::uint32_t i) {
    return ray_distance(ray, obs[i]);
  });
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-12);
}

TEST(Bvh, RaycastMissReturnsNullopt) {
  const auto obs = random_boxes(50, 35);
  Bvh bvh;
  bvh.build(obs);
  const Ray ray{{0, 0, -500}, {0, 0, -1}};  // points away from everything
  EXPECT_FALSE(bvh.raycast(ray, [&](std::uint32_t i) {
                    return ray_distance(ray, obs[i]);
                  }).has_value());
}

TEST(Bvh, TraversalStatsPopulated) {
  const auto obs = random_boxes(200, 36);
  Bvh bvh;
  bvh.build(obs);
  TraversalStats stats;
  bvh.for_overlaps(Aabb{{0, 0, 0}, {100, 100, 100}},
                   [](std::uint32_t) { return false; }, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_EQ(stats.leaves_tested, 200u);
}

// --- CollisionChecker -----------------------------------------------------

TEST(Checker, PointQueries) {
  CollisionChecker checker({Aabb{{0, 0, 0}, {10, 10, 10}}});
  CollisionStats stats;
  EXPECT_TRUE(checker.point_in_collision({5, 5, 5}, &stats));
  EXPECT_FALSE(checker.point_in_collision({15, 5, 5}, &stats));
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GT(stats.narrow_tests, 0u);
}

TEST(Checker, RobotBoxCollision) {
  CollisionChecker checker({Aabb{{10, 0, 0}, {20, 10, 10}}});
  const RigidBody robot = RigidBody::box({1, 1, 1});
  CollisionStats stats;
  EXPECT_FALSE(checker.in_collision(
      robot, {geo::Quat::identity(), {5, 5, 5}}, &stats));
  EXPECT_TRUE(checker.in_collision(
      robot, {geo::Quat::identity(), {10.5, 5, 5}}, &stats));
  // Rotation matters: a long thin robot rotated to point at the wall.
  const RigidBody stick = RigidBody::box({3, 0.1, 0.1});
  EXPECT_TRUE(checker.in_collision(
      stick, {geo::Quat::identity(), {7.5, 5, 5}}, nullptr));
  EXPECT_FALSE(checker.in_collision(
      stick,
      {geo::Quat::from_axis_angle({0, 0, 1}, 1.5707963), {7.5, 5, 5}},
      nullptr));
}

TEST(Checker, SegmentQueries) {
  CollisionChecker checker({Aabb{{4, 4, 4}, {6, 6, 6}}});
  EXPECT_TRUE(checker.segment_in_collision(Segment{{0, 5, 5}, {10, 5, 5}}));
  EXPECT_FALSE(checker.segment_in_collision(Segment{{0, 0, 0}, {10, 0, 0}}));
}

TEST(Checker, RaycastDistance) {
  CollisionChecker checker(
      {Aabb{{4, -10, -10}, {6, 10, 10}}, Sphere{{20, 0, 0}, 1}});
  const auto t = checker.raycast(Ray{{0, 0, 0}, {1, 0, 0}});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.0, 1e-12);
  EXPECT_FALSE(checker.raycast(Ray{{0, 0, 20}, {0, 0, 1}}).has_value());
}

TEST(Checker, EmptyEnvironmentNeverCollides) {
  CollisionChecker checker(std::vector<ObstacleShape>{});
  const RigidBody robot = RigidBody::box({1, 1, 1});
  Xoshiro256ss rng(37);
  for (int i = 0; i < 100; ++i) {
    const geo::Transform pose{
        Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
        {rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)}};
    EXPECT_FALSE(checker.in_collision(robot, pose));
  }
}

TEST(Checker, StatsAccumulateAcrossQueries) {
  CollisionChecker checker({Aabb{{0, 0, 0}, {1, 1, 1}}});
  CollisionStats a, b;
  checker.point_in_collision({0.5, 0.5, 0.5}, &a);
  checker.point_in_collision({0.5, 0.5, 0.5}, &b);
  CollisionStats total = a;
  total += b;
  EXPECT_EQ(total.queries, 2u);
  EXPECT_EQ(total.narrow_tests, a.narrow_tests + b.narrow_tests);
}

// Property sweep: BVH checker equals brute-force checker over random
// environments and random poses.
class CheckerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerProperty, BvhEqualsBruteForce) {
  const std::uint64_t seed = GetParam();
  const auto obs = random_boxes(80, seed);
  CollisionChecker checker(obs);
  const RigidBody robot = RigidBody::box({2, 1, 0.5});
  Xoshiro256ss rng(seed ^ 0xabcdef);
  for (int i = 0; i < 100; ++i) {
    const geo::Transform pose{
        Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
        {rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)}};
    const Obb world = pose.apply(robot.boxes[0]);
    bool brute = false;
    for (const auto& o : obs)
      if (hits(world, o)) {
        brute = true;
        break;
      }
    EXPECT_EQ(checker.in_collision(robot, pose), brute) << "pose " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pmpl::collision
