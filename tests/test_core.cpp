// Tests for core/: region grids, radial regions, weight estimators, the
// PRM/RRT workload builders and replay drivers, parallel build.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/parallel_build.hpp"
#include "core/prm_driver.hpp"
#include "core/radial_regions.hpp"
#include "core/region_grid.hpp"
#include "core/region_weight.hpp"
#include "core/rrt_driver.hpp"
#include "core/strategies.hpp"
#include "env/builders.hpp"
#include "graph/tree_utils.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pmpl::core {
namespace {

// --- RegionGrid -----------------------------------------------------------

TEST(RegionGrid, CellCountAndOrdering) {
  const RegionGrid g({{0, 0, 0}, {10, 20, 30}}, 2, 4, 5);
  EXPECT_EQ(g.size(), 40u);
  // x-major: id = (ix*ny + iy)*nz + iz.
  EXPECT_EQ(g.id_of(0, 0, 0), 0u);
  EXPECT_EQ(g.id_of(0, 0, 1), 1u);
  EXPECT_EQ(g.id_of(0, 1, 0), 5u);
  EXPECT_EQ(g.id_of(1, 0, 0), 20u);
  std::uint32_t ix, iy, iz;
  g.coords_of(27, ix, iy, iz);
  EXPECT_EQ(g.id_of(ix, iy, iz), 27u);
}

TEST(RegionGrid, CellBoxesTileTheBounds) {
  const RegionGrid g({{0, 0, 0}, {12, 12, 12}}, 3, 3, 3);
  double total = 0.0;
  for (std::uint32_t id = 0; id < g.size(); ++id)
    total += g.cell_box(id).volume();
  EXPECT_NEAR(total, 12.0 * 12.0 * 12.0, 1e-9);
}

TEST(RegionGrid, CellOfRoundTrip) {
  const RegionGrid g({{0, 0, 0}, {30, 30, 30}}, 3, 3, 3);
  for (std::uint32_t id = 0; id < g.size(); ++id)
    EXPECT_EQ(g.cell_of(g.centroid(id)), id);
  // Clamping outside points.
  EXPECT_EQ(g.cell_of({-5, -5, -5}), g.id_of(0, 0, 0));
  EXPECT_EQ(g.cell_of({99, 99, 99}), g.id_of(2, 2, 2));
}

TEST(RegionGrid, OverlapExpandsSamplingBox) {
  const RegionGrid g({{0, 0, 0}, {30, 30, 30}}, 3, 3, 3, 2.0);
  const auto center_cell = g.id_of(1, 1, 1);
  const auto box = g.sampling_box(center_cell);
  EXPECT_EQ(box.lo, (geo::Vec3{8, 8, 8}));
  EXPECT_EQ(box.hi, (geo::Vec3{22, 22, 22}));
  // Corner cells are clipped to the bounds.
  const auto corner = g.sampling_box(g.id_of(0, 0, 0));
  EXPECT_EQ(corner.lo, (geo::Vec3{0, 0, 0}));
}

TEST(RegionGrid, AdjacencyIsFaceNeighborhood) {
  const RegionGrid g({{0, 0, 0}, {30, 30, 30}}, 3, 3, 3);
  const auto edges = g.adjacency_edges();
  // 3 directions * 3*3*2 = 54 edges in a 3^3 grid.
  EXPECT_EQ(edges.size(), 54u);
  for (const auto& [a, b] : edges) {
    EXPECT_LT(a, b);
    std::uint32_t ax, ay, az, bx, by, bz;
    g.coords_of(a, ax, ay, az);
    g.coords_of(b, bx, by, bz);
    const int manhattan = std::abs(int(ax) - int(bx)) +
                          std::abs(int(ay) - int(by)) +
                          std::abs(int(az) - int(bz));
    EXPECT_EQ(manhattan, 1);
  }
}

TEST(RegionGrid, MakeAuto2dAnd3d) {
  const auto g3 = RegionGrid::make_auto({{0, 0, 0}, {1, 1, 1}}, 512, false);
  EXPECT_EQ(g3.size(), 512u);
  EXPECT_EQ(g3.nz(), 8u);
  const auto g2 = RegionGrid::make_auto({{0, 0, 0}, {1, 1, 0}}, 64, true);
  EXPECT_EQ(g2.size(), 64u);
  EXPECT_EQ(g2.nz(), 1u);
}

// --- RadialRegions -----------------------------------------------------

TEST(RadialRegions, DirectionsAreUnit) {
  const RadialRegions r({50, 50, 50}, 40, 64, 4, 7, false);
  EXPECT_EQ(r.size(), 64u);
  for (std::uint32_t i = 0; i < r.size(); ++i)
    EXPECT_NEAR(r.direction(i).norm(), 1.0, 1e-12);
}

TEST(RadialRegions, TargetsOnSphereSurface) {
  const RadialRegions r({50, 50, 50}, 40, 32, 4, 8, false);
  for (std::uint32_t i = 0; i < r.size(); ++i)
    EXPECT_NEAR((r.target(i) - geo::Vec3{50, 50, 50}).norm(), 40.0, 1e-9);
}

TEST(RadialRegions, TwoDDirectionsInPlane) {
  const RadialRegions r({0, 0, 0}, 10, 16, 2, 9, true);
  for (std::uint32_t i = 0; i < r.size(); ++i)
    EXPECT_DOUBLE_EQ(r.direction(i).z, 0.0);
}

TEST(RadialRegions, SampleInConeStaysInConeAndRadius) {
  const RadialRegions r({50, 50, 50}, 40, 32, 4, 10, false);
  Xoshiro256ss rng(11);
  const double half = r.cone_half_angle(1.5);
  for (std::uint32_t region = 0; region < 8; ++region) {
    for (int i = 0; i < 200; ++i) {
      const geo::Vec3 p = r.sample_in_cone(region, rng, 1.5);
      const geo::Vec3 d = p - geo::Vec3{50, 50, 50};
      EXPECT_LE(d.norm(), 40.0 + 1e-9);
      if (d.norm() > 1e-9) {
        const double cos_angle =
            d.normalized().dot(r.direction(region));
        EXPECT_GE(cos_angle, std::cos(half) - 1e-9);
      }
    }
  }
}

TEST(RadialRegions, AdjacencyCountsBounded) {
  const RadialRegions r({0, 0, 0}, 10, 48, 4, 12, false);
  const auto edges = r.adjacency_edges();
  // Each region proposes <= 4 neighbors; deduped union is bounded.
  EXPECT_LE(edges.size(), 48u * 4u);
  EXPECT_GE(edges.size(), 48u);  // everyone has at least one neighbor
  std::set<std::pair<std::uint32_t, std::uint32_t>> unique(edges.begin(),
                                                           edges.end());
  EXPECT_EQ(unique.size(), edges.size());
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(RadialRegions, DeterministicPerSeed) {
  const RadialRegions a({0, 0, 0}, 10, 32, 4, 13, false);
  const RadialRegions b({0, 0, 0}, 10, 32, 4, 13, false);
  for (std::uint32_t i = 0; i < 32; ++i)
    EXPECT_EQ(a.direction(i), b.direction(i));
}

// --- region weights --------------------------------------------------------

TEST(RegionWeight, SampleCountsSmoothed) {
  const auto w = weights_from_sample_counts({0, 5, 10});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 6.0);
  EXPECT_DOUBLE_EQ(w[2], 11.0);
}

TEST(RegionWeight, FreeVolumeDetectsObstacle) {
  const auto e = env::med_cube();
  const RegionGrid grid(e->space().position_bounds(), 4, 4, 4);
  const auto w = weights_free_volume(*e, grid, 200, 17);
  ASSERT_EQ(w.size(), 64u);
  // Center cells overlap the cube heavily; corner cells are free.
  const auto center = grid.cell_of({50, 50, 50});
  const auto corner = grid.cell_of({5, 5, 5});
  EXPECT_LT(w[center], 0.5 * w[corner]);
}

TEST(RegionWeight, KRaysSeesBlockedDirections) {
  // Environment blocked on +x side only.
  auto e = env::mixed(0.60);
  const RadialRegions regions({50, 50, 50}, 45, 64, 4, 19, false);
  std::uint64_t casts = 0;
  const auto w = weights_k_rays(*e, regions, 16, 20, &casts);
  EXPECT_EQ(casts, 64u * 16u);
  // Average reach toward -x (clutter-light) should exceed +x (cluttered).
  double minus_x = 0.0, plus_x = 0.0;
  int n_minus = 0, n_plus = 0;
  for (std::uint32_t i = 0; i < regions.size(); ++i) {
    if (regions.direction(i).x < -0.5) {
      minus_x += w[i];
      ++n_minus;
    } else if (regions.direction(i).x > 0.5) {
      plus_x += w[i];
      ++n_plus;
    }
  }
  ASSERT_GT(n_minus, 0);
  ASSERT_GT(n_plus, 0);
  EXPECT_GT(minus_x / n_minus, plus_x / n_plus);
}

// --- strategies --------------------------------------------------------------

TEST(Strategies, NamesAndClassification) {
  EXPECT_EQ(to_string(Strategy::kNoLB), "Without LB");
  EXPECT_TRUE(is_work_stealing(Strategy::kRand8WS));
  EXPECT_TRUE(is_work_stealing(Strategy::kDiffusiveWS));
  EXPECT_FALSE(is_work_stealing(Strategy::kRepartition));
  EXPECT_EQ(steal_policy_of(Strategy::kRand8WS),
            loadbal::StealPolicyKind::kRandK);
  EXPECT_EQ(steal_policy_of(Strategy::kHybridWS),
            loadbal::StealPolicyKind::kHybrid);
}

// --- PRM workload + replay --------------------------------------------------

class PrmDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = env::med_cube().release();
    grid_ = new RegionGrid(
        RegionGrid::make_auto(env_->space().position_bounds(), 512, false));
    PrmWorkloadConfig cfg;
    cfg.total_attempts = 8192;
    cfg.seed = 5;
    workload_ = new Workload(build_prm_workload(*env_, *grid_, cfg));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete grid_;
    delete env_;
  }

  static env::Environment* env_;
  static RegionGrid* grid_;
  static Workload* workload_;
};

env::Environment* PrmDriverTest::env_ = nullptr;
RegionGrid* PrmDriverTest::grid_ = nullptr;
Workload* PrmDriverTest::workload_ = nullptr;

TEST_F(PrmDriverTest, WorkloadShape) {
  EXPECT_EQ(workload_->regions.size(), 512u);
  EXPECT_EQ(workload_->region_edges.size(),
            workload_->edge_profiles.size());
  EXPECT_GT(workload_->roadmap.num_vertices(), 1000u);
  EXPECT_GT(workload_->total_build_s(), 0.0);
  EXPECT_GT(workload_->total_sampling_s(), 0.0);
  // Every vertex is tagged with the region that generated it.
  for (std::uint32_t r = 0; r < 512; ++r)
    for (const auto v : workload_->region_vertices[r])
      EXPECT_EQ(workload_->roadmap.vertex(v).region, r);
}

TEST_F(PrmDriverTest, SamplesCountedPerRegion) {
  std::size_t total = 0;
  for (const auto& r : workload_->regions) total += r.samples;
  EXPECT_EQ(total, workload_->roadmap.num_vertices());
}

TEST_F(PrmDriverTest, BlockedRegionsGenerateFewerSamples) {
  const auto center = grid_->cell_of({50, 50, 50});
  const auto corner = grid_->cell_of({5, 5, 5});
  EXPECT_LT(workload_->regions[center].samples,
            workload_->regions[corner].samples);
}

TEST_F(PrmDriverTest, WorkloadDeterministic) {
  PrmWorkloadConfig cfg;
  cfg.total_attempts = 8192;
  cfg.seed = 5;
  const auto again = build_prm_workload(*env_, *grid_, cfg);
  EXPECT_EQ(again.roadmap.num_vertices(),
            workload_->roadmap.num_vertices());
  EXPECT_EQ(again.roadmap.num_edges(), workload_->roadmap.num_edges());
  for (std::size_t r = 0; r < again.regions.size(); ++r) {
    EXPECT_EQ(again.regions[r].samples, workload_->regions[r].samples);
    EXPECT_DOUBLE_EQ(again.regions[r].build_s,
                     workload_->regions[r].build_s);
  }
}

TEST_F(PrmDriverTest, NaiveAssignmentIsBlockContiguous) {
  const auto a = naive_assignment(512, 8);
  EXPECT_EQ(a.size(), 512u);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  EXPECT_EQ(a.back(), 7u);
}

TEST_F(PrmDriverTest, RepartitioningImprovesBalanceAndTime) {
  PrmRunConfig no_lb;
  no_lb.procs = 16;
  no_lb.strategy = Strategy::kNoLB;
  const auto base = simulate_prm_run(*workload_, no_lb);

  PrmRunConfig repart = no_lb;
  repart.strategy = Strategy::kRepartition;
  const auto lb = simulate_prm_run(*workload_, repart);

  EXPECT_LT(lb.cv_nodes_after, base.cv_nodes_after);
  EXPECT_LT(lb.total_s, base.total_s);
  EXPECT_GT(lb.phases.redistribution_s, 0.0);
  EXPECT_EQ(base.phases.redistribution_s, 0.0);
  // NoLB never moves a region.
  EXPECT_EQ(base.assignment, naive_assignment(512, 16));
}

TEST_F(PrmDriverTest, WorkStealingImprovesOverNoLB) {
  PrmRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = Strategy::kNoLB;
  const auto base = simulate_prm_run(*workload_, cfg);
  for (const Strategy s :
       {Strategy::kHybridWS, Strategy::kRand8WS, Strategy::kDiffusiveWS}) {
    cfg.strategy = s;
    const auto r = simulate_prm_run(*workload_, cfg);
    EXPECT_LT(r.total_s, base.total_s) << to_string(s);
    EXPECT_GT(r.ws.steal_grants, 0u) << to_string(s);
  }
}

TEST_F(PrmDriverTest, PhaseTotalsAddUp) {
  PrmRunConfig cfg;
  cfg.procs = 8;
  cfg.strategy = Strategy::kRepartition;
  const auto r = simulate_prm_run(*workload_, cfg);
  EXPECT_NEAR(r.total_s, r.phases.total(), 1e-12);
  EXPECT_GT(r.phases.node_connection_s, 0.0);
  EXPECT_GT(r.phases.region_connection_s, 0.0);
}

TEST_F(PrmDriverTest, NodesPerProcMatchesAssignment) {
  PrmRunConfig cfg;
  cfg.procs = 8;
  cfg.strategy = Strategy::kRepartition;
  const auto r = simulate_prm_run(*workload_, cfg);
  std::uint64_t total = 0;
  for (const auto n : r.nodes_per_proc) total += n;
  EXPECT_EQ(total, workload_->roadmap.num_vertices());
  ASSERT_EQ(r.assignment.size(), 512u);
  for (const auto owner : r.assignment) EXPECT_LT(owner, 8u);
}

TEST_F(PrmDriverTest, RemoteAccessesTrackEdgeCut) {
  PrmRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = Strategy::kNoLB;
  const auto base = simulate_prm_run(*workload_, cfg);
  EXPECT_GT(base.remote_region_graph, 0u);
  EXPECT_EQ(base.remote_region_graph,
            loadbal::edge_cut(workload_->region_edges, base.assignment));
}

TEST_F(PrmDriverTest, StrongScalingReducesTotalTime) {
  PrmRunConfig cfg;
  cfg.strategy = Strategy::kNoLB;
  double prev = 1e300;
  for (const std::uint32_t p : {4u, 16u, 64u}) {
    cfg.procs = p;
    const auto r = simulate_prm_run(*workload_, cfg);
    EXPECT_LT(r.total_s, prev);
    prev = r.total_s;
  }
}

TEST_F(PrmDriverTest, PartitionerChoicesAllWork) {
  PrmRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = Strategy::kRepartition;
  for (const auto part :
       {PrmRunConfig::Partitioner::kRcb, PrmRunConfig::Partitioner::kSfc,
        PrmRunConfig::Partitioner::kGreedyLpt}) {
    cfg.partitioner = part;
    const auto r = simulate_prm_run(*workload_, cfg);
    EXPECT_LT(r.cv_nodes_after, r.cv_nodes_before);
  }
}

// --- RRT workload + replay ------------------------------------------------

class RrtDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = env::mixed(0.60).release();
    regions_ = new RadialRegions({50, 50, 50}, 45.0, 96, 4, 23, false);
    Xoshiro256ss rng(24);
    root_ = new cspace::Config(
        env_->space().at_position({50, 50, 50}, rng));
    RrtWorkloadConfig cfg;
    cfg.total_nodes = 3000;
    cfg.seed = 25;
    workload_ = new Workload(
        build_rrt_workload(*env_, *regions_, *root_, cfg));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete root_;
    delete regions_;
    delete env_;
  }

  static env::Environment* env_;
  static RadialRegions* regions_;
  static cspace::Config* root_;
  static Workload* workload_;
};

env::Environment* RrtDriverTest::env_ = nullptr;
RadialRegions* RrtDriverTest::regions_ = nullptr;
cspace::Config* RrtDriverTest::root_ = nullptr;
Workload* RrtDriverTest::workload_ = nullptr;

TEST_F(RrtDriverTest, WorkloadShape) {
  EXPECT_EQ(workload_->regions.size(), 96u);
  EXPECT_GT(workload_->roadmap.num_vertices(), 96u);
  EXPECT_GT(workload_->total_build_s(), 0.0);
  EXPECT_DOUBLE_EQ(workload_->total_sampling_s(), 0.0);
}

TEST_F(RrtDriverTest, ResultIsForest) {
  EXPECT_TRUE(graph::is_forest(workload_->roadmap));
}

TEST_F(RrtDriverTest, BranchWorkIsHeterogeneous) {
  const auto times = workload_->build_times();
  const auto s = summarize(times);
  EXPECT_GT(s.cv(), 0.1);  // mixed env: real imbalance across cones
}

TEST_F(RrtDriverTest, WorkStealingImprovesOverNoLB) {
  RrtRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = Strategy::kNoLB;
  const auto base = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
  for (const Strategy s :
       {Strategy::kDiffusiveWS, Strategy::kHybridWS, Strategy::kRand8WS}) {
    cfg.strategy = s;
    const auto r = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
    EXPECT_LT(r.total_s, base.total_s) << to_string(s);
  }
}

TEST_F(RrtDriverTest, KRaysRepartitioningIsPoor) {
  // The paper's point: the k-rays weight estimate is weak; repartitioning
  // on it must not beat work stealing and typically loses to it.
  RrtRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = Strategy::kRepartition;
  const auto repart = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
  EXPECT_GT(repart.redistribution_s, 0.0);
  // Correlation is far from perfect.
  EXPECT_LT(repart.weight_correlation, 0.95);
  cfg.strategy = Strategy::kDiffusiveWS;
  const auto ws = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
  EXPECT_GT(repart.total_s, ws.total_s);
}

TEST_F(RrtDriverTest, DeterministicReplay) {
  RrtRunConfig cfg;
  cfg.procs = 8;
  cfg.strategy = Strategy::kHybridWS;
  const auto a = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
  const auto b = simulate_rrt_run(*workload_, *env_, *regions_, cfg);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.assignment, b.assignment);
}

// --- parallel build -----------------------------------------------------

TEST(ParallelBuild, MatchesWorkloadRoadmapShape) {
  const auto e = env::small_cube();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 64, false);
  ParallelPrmConfig cfg;
  cfg.total_attempts = 2048;
  cfg.workers = 4;
  cfg.seed = 31;
  const auto par = parallel_build_prm(*e, grid, cfg);
  // Same seeds, sequential reference: per-region sampling must agree.
  PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 2048;
  wcfg.seed = 31;
  const auto seq = build_prm_workload(*e, grid, wcfg);
  EXPECT_EQ(par.roadmap.num_vertices(), seq.roadmap.num_vertices());
  for (std::uint32_t r = 0; r < grid.size(); ++r)
    EXPECT_EQ(par.region_vertices[r].size(), seq.region_vertices[r].size());
}

TEST(ParallelBuild, WorkStealingStatsPopulated) {
  const auto e = env::med_cube();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 27, false);
  ParallelPrmConfig cfg;
  cfg.total_attempts = 1024;
  cfg.workers = 4;
  cfg.work_stealing = true;
  const auto r = parallel_build_prm(*e, grid, cfg);
  EXPECT_EQ(r.workers.size(), 4u);
  std::uint64_t executed = 0;
  for (const auto& w : r.workers)
    executed += w.executed_local + w.executed_stolen;
  EXPECT_EQ(executed, 27u);
}

TEST(ParallelBuild, StaticModeAlsoCompletes) {
  const auto e = env::small_cube();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 27, false);
  ParallelPrmConfig cfg;
  cfg.total_attempts = 1024;
  cfg.workers = 3;
  cfg.work_stealing = false;
  const auto r = parallel_build_prm(*e, grid, cfg);
  EXPECT_GT(r.roadmap.num_vertices(), 100u);
}

}  // namespace
}  // namespace pmpl::core
