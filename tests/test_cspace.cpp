// Tests for cspace/: configurations, spaces (sampling, metric,
// interpolation), validity checkers, local planner.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "collision/checker.hpp"
#include "cspace/config.hpp"
#include "cspace/local_planner.hpp"
#include "cspace/space.hpp"
#include "cspace/validity.hpp"
#include "util/rng.hpp"

namespace pmpl::cspace {
namespace {

using collision::CollisionChecker;
using collision::RigidBody;
using geo::Aabb;
using geo::Vec3;

constexpr double kPi = 3.14159265358979323846;

Aabb unit_box100() { return {{0, 0, 0}, {100, 100, 100}}; }

// --- Config -------------------------------------------------------------

TEST(Config, BytesAccountsForValues) {
  Config c{1.0, 2.0, 3.0};
  EXPECT_EQ(config_bytes(c), 3 * sizeof(double) + sizeof(std::uint32_t));
}

TEST(Config, StreamOutput) {
  Config c{1.5, -2.0};
  std::ostringstream os;
  os << c;
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

// --- space construction ---------------------------------------------------

TEST(Space, Se3Shape) {
  const CSpace s = CSpace::se3(unit_box100());
  EXPECT_EQ(s.kind(), SpaceKind::SE3);
  EXPECT_EQ(s.value_count(), 7u);
  EXPECT_EQ(s.dof(), 6u);
}

TEST(Space, Se2Shape) {
  const CSpace s = CSpace::se2(Aabb{{0, 0, 0}, {10, 10, 0}});
  EXPECT_EQ(s.value_count(), 3u);
  EXPECT_EQ(s.dof(), 3u);
}

TEST(Space, EuclideanShape) {
  const CSpace s = CSpace::euclidean({{0, 1}, {-2, 2}, {0, 5}, {0, 1}});
  EXPECT_EQ(s.value_count(), 4u);
  EXPECT_EQ(s.dof(), 4u);
}

// --- sampling ---------------------------------------------------------

TEST(Space, Se3SamplesInBounds) {
  const CSpace s = CSpace::se3(unit_box100());
  Xoshiro256ss rng(3);
  for (int i = 0; i < 500; ++i) {
    const Config c = s.sample(rng);
    ASSERT_EQ(c.size(), 7u);
    EXPECT_TRUE(s.in_bounds(c));
    // Quaternion part is unit.
    const double qn = std::sqrt(c[3] * c[3] + c[4] * c[4] + c[5] * c[5] +
                                c[6] * c[6]);
    EXPECT_NEAR(qn, 1.0, 1e-9);
  }
}

TEST(Space, SampleInRestrictsPosition) {
  const CSpace s = CSpace::se3(unit_box100());
  const Aabb box{{10, 20, 30}, {15, 25, 35}};
  Xoshiro256ss rng(4);
  for (int i = 0; i < 500; ++i) {
    const Config c = s.sample_in(box, rng);
    EXPECT_TRUE(box.contains(s.position(c)));
  }
}

TEST(Space, EuclideanSampleRespectsAllDims) {
  const CSpace s = CSpace::euclidean({{-1, 1}, {0, 2}, {5, 6}, {-3, -2}});
  Xoshiro256ss rng(5);
  for (int i = 0; i < 300; ++i) {
    const Config c = s.sample(rng);
    EXPECT_TRUE(s.in_bounds(c));
    EXPECT_GE(c[3], -3.0);
    EXPECT_LE(c[3], -2.0);
  }
}

TEST(Space, SamplingIsSeedDeterministic) {
  const CSpace s = CSpace::se3(unit_box100());
  Xoshiro256ss a(77), b(77);
  for (int i = 0; i < 50; ++i) {
    const Config ca = s.sample(a);
    const Config cb = s.sample(b);
    EXPECT_EQ(ca, cb);
  }
}

TEST(Space, AtPositionPinsPosition) {
  const CSpace s = CSpace::se3(unit_box100());
  Xoshiro256ss rng(6);
  const Config c = s.at_position({12, 34, 56}, rng);
  EXPECT_EQ(s.position(c), (Vec3{12, 34, 56}));
}

// --- metric axioms (parameterized over space kinds) -----------------------

enum class KindParam { kE3, kSe2, kSe3 };

CSpace make_space(KindParam k) {
  switch (k) {
    case KindParam::kE3:
      return CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
    case KindParam::kSe2:
      return CSpace::se2(Aabb{{0, 0, 0}, {100, 100, 0}});
    case KindParam::kSe3:
      return CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  }
  return CSpace::se3({{0, 0, 0}, {100, 100, 100}});
}

class MetricProperty : public ::testing::TestWithParam<KindParam> {};

TEST_P(MetricProperty, IdentityOfIndiscernibles) {
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(8);
  for (int i = 0; i < 100; ++i) {
    const Config c = s.sample(rng);
    // acos() near 1 has ~sqrt(eps) noise for identical rotations.
    EXPECT_NEAR(s.distance(c, c), 0.0, 1e-6);
  }
}

TEST_P(MetricProperty, Symmetry) {
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(9);
  for (int i = 0; i < 100; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    EXPECT_NEAR(s.distance(a, b), s.distance(b, a), 1e-9);
  }
}

TEST_P(MetricProperty, TriangleInequality) {
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(10);
  for (int i = 0; i < 200; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    const Config c = s.sample(rng);
    EXPECT_LE(s.distance(a, c), s.distance(a, b) + s.distance(b, c) + 1e-9);
  }
}

TEST_P(MetricProperty, PositionDistanceLowerBoundsMetric) {
  // The kd-tree's pruning correctness depends on this.
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(11);
  for (int i = 0; i < 200; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    const double pos = (s.position(a) - s.position(b)).norm();
    EXPECT_LE(pos, s.distance(a, b) + 1e-9);
  }
}

TEST_P(MetricProperty, InterpolationEndpoints) {
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(12);
  for (int i = 0; i < 50; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    EXPECT_NEAR(s.distance(s.interpolate(a, b, 0.0), a), 0.0, 1e-6);
    EXPECT_NEAR(s.distance(s.interpolate(a, b, 1.0), b), 0.0, 1e-6);
  }
}

TEST_P(MetricProperty, InterpolationIsMetricProportional) {
  const CSpace s = make_space(GetParam());
  Xoshiro256ss rng(13);
  for (int i = 0; i < 50; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    const double d = s.distance(a, b);
    const Config mid = s.interpolate(a, b, 0.5);
    EXPECT_NEAR(s.distance(a, mid), 0.5 * d, 1e-6 + 0.01 * d);
    EXPECT_NEAR(s.distance(mid, b), 0.5 * d, 1e-6 + 0.01 * d);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MetricProperty,
                         ::testing::Values(KindParam::kE3, KindParam::kSe2,
                                           KindParam::kSe3));

TEST(Space, Se2AngleWrapsAround) {
  const CSpace s = CSpace::se2(Aabb{{0, 0, 0}, {10, 10, 0}});
  const Config a{5, 5, kPi - 0.1};
  const Config b{5, 5, -kPi + 0.1};
  // Shortest angular path is 0.2, not 2*pi - 0.2.
  EXPECT_NEAR(s.distance(a, b), 0.5 * 0.2, 1e-9);
  const Config mid = s.interpolate(a, b, 0.5);
  EXPECT_NEAR(std::fabs(mid[2]), kPi, 0.11);
}

TEST(Space, StepCountScalesWithDistance) {
  const CSpace s = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  const Config a{0, 0, 0};
  const Config b{10, 0, 0};
  EXPECT_EQ(s.step_count(a, b, 1.0), 10u);
  EXPECT_EQ(s.step_count(a, b, 3.0), 4u);
  EXPECT_EQ(s.step_count(a, a, 1.0), 0u);
}

TEST(Space, PoseMapsSe2) {
  const CSpace s = CSpace::se2(Aabb{{0, 0, 0}, {10, 10, 0}});
  const Config c{3, 4, kPi / 2.0};
  const geo::Transform t = s.pose(c);
  const Vec3 p = t.apply(geo::Vec3{1, 0, 0});
  EXPECT_NEAR(p.x, 3.0, 1e-9);
  EXPECT_NEAR(p.y, 5.0, 1e-9);
}

// --- validity ----------------------------------------------------------

TEST(Validity, PointRobot) {
  const CSpace s = CSpace::euclidean({{0, 10}, {0, 10}});
  CollisionChecker checker({Aabb{{4, 4, -1}, {6, 6, 1}}});
  PointValidity validity(s, checker);
  EXPECT_TRUE(validity.valid(Config{1, 1}));
  EXPECT_FALSE(validity.valid(Config{5, 5}));
  EXPECT_FALSE(validity.valid(Config{-1, 5}));  // out of bounds
}

TEST(Validity, RigidBodySe3) {
  const CSpace s = CSpace::se3(unit_box100());
  CollisionChecker checker({Aabb{{40, 40, 40}, {60, 60, 60}}});
  RigidBodyValidity validity(s, RigidBody::box({2, 2, 2}), checker);
  Xoshiro256ss rng(14);
  const Config free_cfg = s.at_position({10, 10, 10}, rng);
  const Config hit_cfg = s.at_position({50, 50, 50}, rng);
  EXPECT_TRUE(validity.valid(free_cfg));
  EXPECT_FALSE(validity.valid(hit_cfg));
  // Near-surface: the robot's extent matters (41,50,50 is 1 away from the
  // obstacle face at x=40 but the robot reaches 2+).
  const Config near_cfg = s.at_position({39, 50, 50}, rng);
  EXPECT_FALSE(validity.valid(near_cfg));
}

TEST(Validity, PlanarArmFreeAndBlocked) {
  // 2-link arm anchored at origin, links of length 5.
  const CSpace s = CSpace::euclidean({{-kPi, kPi}, {-kPi, kPi}});
  CollisionChecker clear_checker(std::vector<collision::ObstacleShape>{});
  PlanarArmValidity arm_free(s, {0, 0, 0}, {5.0, 5.0}, 0.4, clear_checker);
  EXPECT_TRUE(arm_free.valid(Config{0.3, 0.3}));

  // Wall right of the base blocks a straight-out pose.
  CollisionChecker wall_checker({Aabb{{6, -5, -5}, {8, 5, 5}}});
  PlanarArmValidity arm(s, {0, 0, 0}, {5.0, 5.0}, 0.4, wall_checker);
  EXPECT_FALSE(arm.valid(Config{0.0, 0.0}));      // reaches x=10 through wall
  EXPECT_TRUE(arm.valid(Config{kPi / 2, 0.0}));   // points up, clear
}

TEST(Validity, PlanarArmForwardKinematics) {
  const CSpace s = CSpace::euclidean({{-kPi, kPi}, {-kPi, kPi}});
  CollisionChecker checker(std::vector<collision::ObstacleShape>{});
  PlanarArmValidity arm(s, {1, 2, 0}, {3.0, 4.0}, 0.2, checker);
  const auto joints = arm.forward_kinematics(Config{0.0, kPi / 2.0});
  ASSERT_EQ(joints.size(), 3u);
  EXPECT_NEAR(joints[1].x, 4.0, 1e-9);
  EXPECT_NEAR(joints[1].y, 2.0, 1e-9);
  EXPECT_NEAR(joints[2].x, 4.0, 1e-9);
  EXPECT_NEAR(joints[2].y, 6.0, 1e-9);
}

// --- local planner -------------------------------------------------------

TEST(LocalPlanner, FreePathSucceeds) {
  const CSpace s = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  CollisionChecker checker(std::vector<collision::ObstacleShape>{});
  PointValidity validity(s, checker);
  const LocalPlanner lp(s, validity, 1.0);
  const auto r = lp.plan(Config{0, 0, 0}, Config{30, 0, 0});
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.steps_checked, 29u);  // interior points only
  EXPECT_NEAR(r.length, 30.0, 1e-12);
}

TEST(LocalPlanner, BlockedPathFails) {
  const CSpace s = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  CollisionChecker checker({Aabb{{10, -1, -1}, {12, 1, 1}}});
  PointValidity validity(s, checker);
  const LocalPlanner lp(s, validity, 0.5);
  const auto r = lp.plan(Config{0, 0, 0}, Config{30, 0, 0});
  EXPECT_FALSE(r.success);
  // Fails early: roughly at the obstacle, not after the full edge.
  EXPECT_LT(r.steps_checked, 30u);
}

TEST(LocalPlanner, ResolutionControlsStepCount) {
  const CSpace s = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  CollisionChecker checker(std::vector<collision::ObstacleShape>{});
  PointValidity validity(s, checker);
  const LocalPlanner coarse(s, validity, 5.0);
  const LocalPlanner fine(s, validity, 0.5);
  const Config a{0, 0, 0}, b{20, 0, 0};
  EXPECT_LT(coarse.plan(a, b).steps_checked, fine.plan(a, b).steps_checked);
}

TEST(LocalPlanner, StatsCountValidityChecks) {
  const CSpace s = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  CollisionChecker checker({Aabb{{50, 50, 50}, {51, 51, 51}}});
  PointValidity validity(s, checker);
  const LocalPlanner lp(s, validity, 1.0);
  collision::CollisionStats stats;
  lp.plan(Config{0, 0, 0}, Config{10, 0, 0}, &stats);
  EXPECT_EQ(stats.queries, 9u);
}

// --- edge interpolator ---------------------------------------------------

void expect_bit_identical(const CSpace& s, const Config& a, const Config& b) {
  EdgeInterpolator ip;
  ip.reset(s, a, b);
  Config out;
  for (const double t :
       {0.0, 1e-9, 0.125, 1.0 / 3.0, 0.5, 0.75, 0.9999999, 1.0}) {
    const Config ref = s.interpolate(a, b, t);
    ip.at(t, out);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(out[i], ref[i]) << "t=" << t << " i=" << i;  // exact bits
  }
}

TEST(EdgeInterpolator, BitIdenticalToInterpolate) {
  Xoshiro256ss rng(21);
  const CSpace eu = CSpace::euclidean({{0, 100}, {-5, 5}, {0, 1}, {-2, 2}});
  const CSpace se2 = CSpace::se2({{0, 0, 0}, {100, 100, 0}});
  const CSpace se3 = CSpace::se3(unit_box100());
  for (int i = 0; i < 50; ++i) {
    expect_bit_identical(eu, eu.sample(rng), eu.sample(rng));
    expect_bit_identical(se2, se2.sample(rng), se2.sample(rng));
    expect_bit_identical(se3, se3.sample(rng), se3.sample(rng));
  }
  // Force slerp's near-parallel (nlerp) branch: rotations almost equal.
  for (int i = 0; i < 20; ++i) {
    Config a = se3.sample(rng);
    Config b = se3.sample(rng);
    for (std::size_t j = 3; j < 7; ++j) b[j] = a[j] + 1e-6 * b[j];
    expect_bit_identical(se3, a, b);
    // And the sign-flip branch: negated target quaternion, same rotation.
    Config c = a;
    for (std::size_t j = 3; j < 7; ++j) c[j] = -a[j];
    c[0] = b[0];
    expect_bit_identical(se3, a, c);
  }
  // Degenerate edge: a == b.
  const Config a = se3.sample(rng);
  expect_bit_identical(se3, a, a);
}

// --- batched validity -----------------------------------------------------

TEST(Validity, RigidBodyBatchMatchesSequential) {
  const CSpace s = CSpace::se3(unit_box100());
  CollisionChecker checker(
      {Aabb{{40, 40, 40}, {60, 60, 60}}, Aabb{{0, 0, 0}, {15, 15, 15}}});
  RigidBodyValidity validity(s, RigidBody::box({2, 2, 2}), checker);
  Xoshiro256ss rng(22);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Config> cs;
    const std::size_t n = 1 + rng.uniform_u64(40);
    for (std::size_t i = 0; i < n; ++i) {
      Config c = s.sample(rng);
      if (rng.uniform_u64(7) == 0) c[0] = -5.0;  // out-of-bounds entries
      cs.push_back(c);
    }
    std::size_t ref = cs.size();
    collision::CollisionStats ref_stats;
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (!validity.valid(cs[i], &ref_stats)) {
        ref = i;
        break;
      }
    collision::CollisionStats batch_stats;
    EXPECT_EQ(validity.valid_batch(cs, &batch_stats), ref) << trial;
    // `queries` counts consumed verdicts — identical on every path. The
    // work counters (narrow_tests / bvh_nodes) follow the block contract:
    // the wide path does one union-box BVH walk and one 4-lane test per
    // candidate per group, so they are deterministic but not equal to the
    // per-pose sequential counts (see CollisionStats docs).
    EXPECT_EQ(batch_stats.queries, ref_stats.queries);
    collision::CollisionStats rerun_stats;
    EXPECT_EQ(validity.valid_batch(cs, &rerun_stats), ref) << trial;
    EXPECT_EQ(rerun_stats.narrow_tests, batch_stats.narrow_tests);
    EXPECT_EQ(rerun_stats.bvh_nodes, batch_stats.bvh_nodes);
  }
}

// --- local planner: midpoint-out ordering --------------------------------

/// Reference: the pre-reordering sequential sweep, kept here to pin the
/// contract that reordering never changes an edge's verdict or length.
LocalPlanResult sequential_plan(const CSpace& s, const ValidityChecker& v,
                                double resolution, const Config& a,
                                const Config& b) {
  LocalPlanResult r;
  r.length = s.distance(a, b);
  const std::size_t n = s.step_count(a, b, resolution);
  for (std::size_t i = 1; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    ++r.steps_checked;
    if (!v.valid(s.interpolate(a, b, t))) {
      r.success = false;
      return r;
    }
  }
  r.success = true;
  return r;
}

TEST(LocalPlanner, ReorderedVerdictMatchesSequentialScan) {
  const CSpace s = CSpace::se3(unit_box100());
  CollisionChecker checker({Aabb{{30, 0, 0}, {40, 70, 100}},
                            Aabb{{60, 30, 0}, {70, 100, 100}},
                            Aabb{{20, 20, 60}, {80, 80, 70}}});
  RigidBodyValidity validity(s, RigidBody::box({3, 3, 3}), checker);
  const LocalPlanner lp(s, validity, 1.0);
  Xoshiro256ss rng(23);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 120; ++i) {
    const Config a = s.sample(rng);
    const Config b = s.sample(rng);
    const auto ref = sequential_plan(s, validity, 1.0, a, b);
    const auto got = lp.plan(a, b);
    ASSERT_EQ(got.success, ref.success) << "edge " << i;
    EXPECT_EQ(got.length, ref.length);
    // Accepted edges check every interior step exactly once.
    if (ref.success) {
      EXPECT_EQ(got.steps_checked, ref.steps_checked);
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // The fixture must actually exercise both outcomes.
  EXPECT_GT(accepted, 5);
  EXPECT_GT(rejected, 5);
}

TEST(LocalPlanner, MidpointOutRejectsBlockedMiddleEarly) {
  const CSpace s = CSpace::euclidean({{0, 1000}, {0, 10}, {0, 10}});
  // Thin wall at the exact middle of a very long edge.
  CollisionChecker checker({Aabb{{499, -1, -1}, {501, 11, 11}}});
  PointValidity validity(s, checker);
  const LocalPlanner lp(s, validity, 1.0);
  const auto r = lp.plan(Config{0, 5, 5}, Config{1000, 5, 5});
  EXPECT_FALSE(r.success);
  // The first checked step is the midpoint, which is inside the wall, so
  // rejection happens within the very first block of checks — the
  // sequential sweep would have burned ~500 checks getting there.
  EXPECT_LE(r.steps_checked, 16u);
}

}  // namespace
}  // namespace pmpl::cspace
