// Tests for env/: environment builders, blocked fractions, free-volume
// estimation.

#include <gtest/gtest.h>

#include "env/builders.hpp"
#include "env/environment.hpp"

namespace pmpl::env {
namespace {

TEST(Env, FreeEnvironmentIsEmpty) {
  const auto e = free_env();
  EXPECT_EQ(e->checker().obstacle_count(), 0u);
  EXPECT_DOUBLE_EQ(e->blocked_fraction(2000), 0.0);
}

TEST(Env, MedCubeBlockedFractionNearTarget) {
  const auto e = med_cube();
  EXPECT_NEAR(e->blocked_fraction(20000), 0.24, 0.02);
}

TEST(Env, SmallCubeBlockedFractionNearTarget) {
  const auto e = small_cube();
  EXPECT_NEAR(e->blocked_fraction(20000), 0.06, 0.015);
}

TEST(Env, MixedEnvironmentsHitBlockedTargets) {
  // Clutter accounting ignores box overlap, so the realized fraction is
  // somewhat below the nominal target but must be substantial and ordered.
  const auto m60 = mixed(0.60);
  const auto m30 = mixed(0.30);
  const double b60 = m60->blocked_fraction(20000);
  const double b30 = m30->blocked_fraction(20000);
  EXPECT_GT(b60, b30);
  EXPECT_GT(b60, 0.35);
  EXPECT_GT(b30, 0.18);
  EXPECT_LT(b60, 0.65);
}

TEST(Env, MixedIsSpatiallySkewed) {
  // More clutter toward +x: the -x half must be freer.
  const auto e = mixed(0.60);
  const geo::Aabb left{{0, 0, 0}, {50, 100, 100}};
  const geo::Aabb right{{50, 0, 0}, {100, 100, 100}};
  EXPECT_GT(e->free_fraction_in(left, 4000), e->free_fraction_in(right, 4000));
}

TEST(Env, WallsHaveObstaclesAndPassages) {
  const auto e = walls(false);
  EXPECT_GE(e->checker().obstacle_count(), 10u);
  const double blocked = e->blocked_fraction(20000);
  EXPECT_GT(blocked, 0.05);
  EXPECT_LT(blocked, 0.5);
}

TEST(Env, Walls45UsesRotatedBoxes) {
  const auto e = walls(true);
  EXPECT_GE(e->checker().obstacle_count(), 10u);
  // Same rough blockage as the axis-aligned variant.
  EXPECT_NEAR(e->blocked_fraction(20000), walls(false)->blocked_fraction(20000),
              0.15);
}

TEST(Env, Model2dBlockedFraction) {
  const auto e = model_2d(0.25);
  EXPECT_EQ(e->robot_model(), RobotModel::kPoint);
  // 2D workspace: sample z collapses to the slab; estimate via region box.
  const geo::Aabb plane{{0, 0, 0}, {1, 1, 0}};
  const double free = e->free_fraction_in(plane, 20000);
  EXPECT_NEAR(free, 0.75, 0.02);
}

TEST(Env, Model2dObstacleIsCentered) {
  const auto e = model_2d(0.25);
  // sqrt(0.25)=0.5 side centered: [0.25, 0.75]^2 blocked.
  EXPECT_TRUE(e->checker().point_in_collision({0.5, 0.5, 0.0}));
  EXPECT_FALSE(e->checker().point_in_collision({0.1, 0.5, 0.0}));
  EXPECT_FALSE(e->checker().point_in_collision({0.5, 0.9, 0.0}));
}

TEST(Env, Imbalanced2dQuadrantsDiffer) {
  const auto e = imbalanced_2d();
  // Upper-left quadrant (Fig 3's open R0) is much freer than the right.
  const geo::Aabb open_quad{{0, 50, -1}, {50, 100, 1}};
  const geo::Aabb busy_quad{{50, 0, -1}, {100, 50, 1}};
  EXPECT_GT(e->free_fraction_in(open_quad, 4000),
            e->free_fraction_in(busy_quad, 4000) + 0.3);
}

TEST(Env, MazeAndWarehouseBuild) {
  const auto m = maze_2d();
  EXPECT_GT(m->checker().obstacle_count(), 5u);
  EXPECT_EQ(m->space().kind(), cspace::SpaceKind::SE2);
  const auto w = warehouse();
  EXPECT_GT(w->checker().obstacle_count(), 4u);
  EXPECT_EQ(w->space().kind(), cspace::SpaceKind::SE3);
}

TEST(Env, FreeFractionInBlockedRegionIsZero) {
  const auto e = med_cube();
  // A box fully inside the central cube.
  const geo::Aabb inside{{45, 45, 45}, {55, 55, 55}};
  EXPECT_DOUBLE_EQ(e->free_fraction_in(inside, 500), 0.0);
  const geo::Aabb corner{{0, 0, 0}, {5, 5, 5}};
  EXPECT_DOUBLE_EQ(e->free_fraction_in(corner, 500), 1.0);
}

TEST(Env, ValidityRespectsRobotModel) {
  const auto e = med_cube();
  Xoshiro256ss rng(5);
  // A pose near the cube face: free for a point but blocked for the robot.
  const auto& s = e->space();
  // Cube spans [19.07, 81] roughly for 24%: side = 100*cbrt(.24) = 62.14,
  // lo = 18.93. Place robot center 3 units off the face: the 7-half robot
  // overlaps.
  const cspace::Config c = s.at_position({15.0, 50.0, 50.0}, rng);
  EXPECT_FALSE(e->checker().point_in_collision({15.0, 50.0, 50.0}));
  EXPECT_FALSE(e->validity().valid(c));  // rigid body hits
}

TEST(Env, DeterministicBuilders) {
  // Randomized builders (mixed) must be reproducible across calls.
  const auto a = mixed(0.30);
  const auto b = mixed(0.30);
  EXPECT_EQ(a->checker().obstacle_count(), b->checker().obstacle_count());
}

}  // namespace
}  // namespace pmpl::env
