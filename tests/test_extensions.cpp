// Tests for the library extensions: sampling strategies, path smoothing,
// roadmap serialization, and lifeline work stealing.

#include <gtest/gtest.h>

#include <sstream>

#include "core/parallel_build_rrt.hpp"
#include "core/prm_driver.hpp"
#include "core/rrt_driver.hpp"
#include "env/env_io.hpp"
#include "graph/tree_utils.hpp"
#include "env/builders.hpp"
#include "loadbal/partition.hpp"
#include "loadbal/ws_engine.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "planner/roadmap_io.hpp"
#include "planner/samplers.hpp"
#include "planner/smoothing.hpp"
#include "util/rng.hpp"

namespace pmpl {
namespace {

// --- samplers ------------------------------------------------------------

TEST(Samplers, UniformProducesValidInBox) {
  const auto e = env::med_cube();
  planner::UniformSampler sampler(e->space(), e->validity());
  planner::PlannerStats stats;
  Xoshiro256ss rng(1);
  const geo::Aabb box{{0, 0, 0}, {40, 40, 40}};
  int kept = 0;
  for (int i = 0; i < 300; ++i) {
    cspace::Config c;
    if (!sampler.sample(box, rng, c, stats)) continue;
    ++kept;
    EXPECT_TRUE(box.contains(e->space().position(c)));
    EXPECT_TRUE(e->validity().valid(c));
  }
  EXPECT_GT(kept, 0);
  EXPECT_EQ(stats.samples_attempted, 300u);
  EXPECT_EQ(stats.samples_valid, static_cast<std::uint64_t>(kept));
}

TEST(Samplers, GaussianOutputsAreValid) {
  const auto e = env::med_cube();
  planner::GaussianSampler sampler(e->space(), e->validity(), 6.0);
  planner::PlannerStats stats;
  Xoshiro256ss rng(2);
  const geo::Aabb box = e->space().position_bounds();
  int kept = 0;
  for (int i = 0; i < 2000 && kept < 30; ++i) {
    cspace::Config c;
    if (sampler.sample(box, rng, c, stats)) {
      ++kept;
      EXPECT_TRUE(e->validity().valid(c));
    }
  }
  EXPECT_GT(kept, 0);
}

TEST(Samplers, GaussianConcentratesNearObstacle) {
  // med-cube obstacle spans roughly [19, 81]^3; near-surface samples sit
  // within the robot-inflated band around it.
  const auto e = env::med_cube();
  planner::GaussianSampler gaussian(e->space(), e->validity(), 4.0);
  planner::UniformSampler uniform(e->space(), e->validity());
  planner::PlannerStats stats;
  Xoshiro256ss rng(3);
  const geo::Aabb box = e->space().position_bounds();

  auto near_surface_fraction = [&](planner::Sampler& s, int want) {
    int kept = 0, near = 0;
    for (int i = 0; i < 20000 && kept < want; ++i) {
      cspace::Config c;
      if (!s.sample(box, rng, c, stats)) continue;
      ++kept;
      // Distance from the position to the (uninflated) obstacle box.
      const geo::Aabb cube{{19.07, 19.07, 19.07}, {81.0, 81.0, 81.0}};
      const double d = std::sqrt(geo::distance2(e->space().position(c), cube));
      if (d < 25.0) ++near;
    }
    return kept ? double(near) / kept : 0.0;
  };
  const double g_frac = near_surface_fraction(gaussian, 60);
  const double u_frac = near_surface_fraction(uniform, 200);
  EXPECT_GT(g_frac, u_frac);
}

TEST(Samplers, BridgeTestFindsNarrowCorridor) {
  // A narrow slot between two blocks: bridge-test samples land inside it.
  std::vector<collision::ObstacleShape> obs{
      geo::Aabb{{40, 0, 0}, {48, 100, 100}},
      geo::Aabb{{52, 0, 0}, {60, 100, 100}}};
  env::Environment e("slot", cspace::CSpace::se3({{0, 0, 0},
                                                  {100, 100, 100}}),
                     std::move(obs), collision::RigidBody::box({1, 1, 1}));
  planner::BridgeTestSampler sampler(e.space(), e.validity(), 14.0);
  planner::PlannerStats stats;
  Xoshiro256ss rng(4);
  const geo::Aabb box = e.space().position_bounds();
  int kept = 0, in_slot = 0;
  for (int i = 0; i < 50000 && kept < 40; ++i) {
    cspace::Config c;
    if (!sampler.sample(box, rng, c, stats)) continue;
    ++kept;
    const double x = e.space().position(c).x;
    if (x > 47.0 && x < 53.0) ++in_slot;
  }
  ASSERT_GT(kept, 0);
  // The slot is 4% of the x-range; bridge sampling should hit it far more
  // often than that.
  EXPECT_GT(double(in_slot) / kept, 0.3);
}

TEST(Samplers, FactoryCoversAllKinds) {
  const auto e = env::free_env();
  for (const auto kind :
       {planner::SamplerKind::kUniform, planner::SamplerKind::kGaussian,
        planner::SamplerKind::kBridgeTest}) {
    const auto s = planner::make_sampler(kind, e->space(), e->validity(), 5.0);
    ASSERT_NE(s, nullptr);
  }
}

TEST(Samplers, DeterministicPerSeed) {
  const auto e = env::med_cube();
  planner::GaussianSampler sampler(e->space(), e->validity(), 5.0);
  planner::PlannerStats s1, s2;
  Xoshiro256ss r1(9), r2(9);
  for (int i = 0; i < 200; ++i) {
    cspace::Config a, b;
    const bool ka = sampler.sample(e->space().position_bounds(), r1, a, s1);
    const bool kb = sampler.sample(e->space().position_bounds(), r2, b, s2);
    ASSERT_EQ(ka, kb);
    if (ka) EXPECT_EQ(a, b);
  }
}

// --- smoothing -----------------------------------------------------------

TEST(Smoothing, StraightensDetourInFreeSpace) {
  const auto e = env::free_env();
  Xoshiro256ss rng(5);
  std::vector<cspace::Config> path;
  // A deliberately jagged path along x.
  for (const double x : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0})
    path.push_back(e->space().at_position(
        {x, (static_cast<int>(x) % 20 == 0) ? 10.0 : 40.0, 50.0}, rng));
  const auto r = planner::shortcut_path(*e, path, 200, 1.0, 6);
  EXPECT_LT(r.length_after, r.length_before);
  EXPECT_GT(r.shortcuts_applied, 0u);
  EXPECT_EQ(r.path.front(), path.front());
  EXPECT_EQ(r.path.back(), path.back());
  EXPECT_TRUE(planner::path_valid(*e, r.path, 1.0));
}

TEST(Smoothing, NeverCutsThroughObstacles) {
  const auto e = env::med_cube();
  planner::PrmParams params;
  params.k_neighbors = 8;
  planner::Prm prm(*e, params);
  prm.build(1500, 7);
  Xoshiro256ss rng(8);
  const auto start = e->space().at_position({8, 8, 8}, rng);
  const auto goal = e->space().at_position({92, 92, 92}, rng);
  const auto path = prm.query(start, goal);
  ASSERT_TRUE(path.has_value());
  const auto r = planner::shortcut_path(*e, *path, 300, 1.0, 9);
  EXPECT_LE(r.length_after, r.length_before + 1e-9);
  EXPECT_TRUE(planner::path_valid(*e, r.path, 1.0));
}

TEST(Smoothing, ShortPathsUntouched) {
  const auto e = env::free_env();
  Xoshiro256ss rng(10);
  const std::vector<cspace::Config> two{
      e->space().at_position({0, 0, 0}, rng),
      e->space().at_position({10, 0, 0}, rng)};
  const auto r = planner::shortcut_path(*e, two, 50, 1.0, 11);
  EXPECT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.shortcuts_applied, 0u);
  EXPECT_DOUBLE_EQ(r.length_before, r.length_after);
}

// --- roadmap io ------------------------------------------------------------

TEST(RoadmapIo, RoundTripPreservesEverything) {
  const auto e = env::small_cube();
  planner::Prm prm(*e);
  prm.build(400, 12);
  const auto& g = prm.roadmap();

  std::stringstream buffer;
  ASSERT_TRUE(planner::save_roadmap(g, buffer));
  const auto loaded = planner::load_roadmap(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded->num_edges(), g.num_edges());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->vertex(v).region, g.vertex(v).region);
    ASSERT_EQ(loaded->vertex(v).cfg.size(), g.vertex(v).cfg.size());
    for (std::size_t i = 0; i < g.vertex(v).cfg.size(); ++i)
      EXPECT_DOUBLE_EQ(loaded->vertex(v).cfg[i], g.vertex(v).cfg[i]);
    EXPECT_EQ(loaded->degree(v), g.degree(v));
  }
}

TEST(RoadmapIo, LoadedRoadmapAnswersQueries) {
  const auto e = env::small_cube();
  planner::PrmParams params;
  params.k_neighbors = 8;
  planner::Prm prm(*e, params);
  prm.build(1200, 13);
  std::stringstream buffer;
  ASSERT_TRUE(planner::save_roadmap(prm.roadmap(), buffer));
  auto loaded = planner::load_roadmap(buffer);
  ASSERT_TRUE(loaded.has_value());
  Xoshiro256ss rng(14);
  const auto start = e->space().at_position({8, 8, 8}, rng);
  const auto goal = e->space().at_position({92, 92, 92}, rng);
  const auto path =
      planner::query_roadmap(*e, *loaded, start, goal, 8, 1.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(planner::path_valid(*e, *path, 1.0));
}

TEST(RoadmapIo, RejectsMalformedInput) {
  {
    std::stringstream bad("not-a-roadmap 1\n");
    EXPECT_FALSE(planner::load_roadmap(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-roadmap 99\n");
    EXPECT_FALSE(planner::load_roadmap(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-roadmap 1\nv 0 3 1.0 2.0\n");  // truncated
    EXPECT_FALSE(planner::load_roadmap(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-roadmap 1\ne 0 1 2.0\n");  // edge w/o verts
    EXPECT_FALSE(planner::load_roadmap(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-roadmap 1\nx 1 2 3\n");  // unknown record
    EXPECT_FALSE(planner::load_roadmap(bad).has_value());
  }
}

TEST(RoadmapIo, EmptyRoadmap) {
  planner::Roadmap g;
  std::stringstream buffer;
  ASSERT_TRUE(planner::save_roadmap(g, buffer));
  const auto loaded = planner::load_roadmap(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 0u);
}

// --- lifeline work stealing -------------------------------------------------

TEST(Lifeline, AllWorkExecutedOnce) {
  const std::size_t n = 128;
  std::vector<loadbal::WsItem> items(n, {1e-3, 500});
  const std::vector<std::uint32_t> initial(n, 0);
  loadbal::WsConfig cfg;
  cfg.policy = loadbal::StealPolicyKind::kLifeline;
  const auto r = loadbal::simulate_work_stealing(items, initial, 16, cfg);
  std::uint64_t executed = 0;
  for (std::uint32_t p = 0; p < 16; ++p)
    executed += r.local_tasks[p] + r.stolen_tasks[p];
  EXPECT_EQ(executed, n);
  EXPECT_GT(r.steal_grants, 0u);
}

TEST(Lifeline, ImprovesHotspotMakespan) {
  const std::size_t n = 256;
  std::vector<loadbal::WsItem> items(n, {1e-3, 500});
  const std::vector<std::uint32_t> initial(n, 0);
  loadbal::WsConfig cfg;
  cfg.policy = loadbal::StealPolicyKind::kLifeline;
  const auto r = loadbal::simulate_work_stealing(items, initial, 16, cfg);
  EXPECT_LT(r.makespan_s, 0.9 * 256e-3);
}

TEST(Lifeline, FewerRequestsThanActiveProbing) {
  // Lifeline thieves stop probing after registration; hybrid thieves keep
  // retrying. Same workload, lifeline must need fewer requests.
  const auto e = env::med_cube();
  const std::size_t n = 512;
  Xoshiro256ss rng(15);
  std::vector<loadbal::WsItem> items(n);
  for (auto& item : items) item = {rng.uniform(1e-4, 2e-3), 500};
  const auto initial = loadbal::partition_block(n, 64);
  loadbal::WsConfig lifeline;
  lifeline.policy = loadbal::StealPolicyKind::kLifeline;
  loadbal::WsConfig hybrid;
  hybrid.policy = loadbal::StealPolicyKind::kHybrid;
  hybrid.give_up_after = 12;
  const auto rl = loadbal::simulate_work_stealing(items, initial, 64,
                                                  lifeline);
  const auto rh = loadbal::simulate_work_stealing(items, initial, 64,
                                                  hybrid);
  EXPECT_LT(rl.steal_requests, rh.steal_requests);
  // And stays competitive on makespan (within 25%).
  EXPECT_LT(rl.makespan_s, 1.25 * rh.makespan_s);
}

TEST(Lifeline, DeterministicPerSeed) {
  std::vector<loadbal::WsItem> items(64, {5e-4, 100});
  const std::vector<std::uint32_t> initial(64, 3);
  loadbal::WsConfig cfg;
  cfg.policy = loadbal::StealPolicyKind::kLifeline;
  cfg.seed = 77;
  const auto a = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  const auto b = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.final_owner, b.final_owner);
}

TEST(Lifeline, HypercubeVictims) {
  loadbal::StealPolicy policy(loadbal::StealPolicyKind::kLifeline, 16);
  Xoshiro256ss rng(16);
  const auto v = policy.victims(5, 0, rng);  // 5 = 0101
  // XOR with 1,2,4,8: 4, 7, 1, 13.
  EXPECT_EQ(v, (std::vector<std::uint32_t>{4, 7, 1, 13}));
  // Ragged pool: victims beyond p are dropped.
  loadbal::StealPolicy ragged(loadbal::StealPolicyKind::kLifeline, 10);
  const auto rv = ragged.victims(3, 0, rng);  // 3^8=11 >= 10 dropped
  for (const auto x : rv) EXPECT_LT(x, 10u);
}

// --- adaptive repartitioning gate --------------------------------------

TEST(AdaptiveRepartitioning, SkipsWhenBalanced) {
  // Free environment: the naive mapping is already balanced, so the gate
  // must decline to migrate and the run must equal the NoLB assignment.
  const auto e = env::free_env();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 512, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 8192;
  wcfg.seed = 31;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  core::PrmRunConfig cfg;
  cfg.procs = 64;
  cfg.strategy = core::Strategy::kRepartition;
  cfg.adaptive = true;
  const auto r = core::simulate_prm_run(w, cfg);
  EXPECT_TRUE(r.repartition_skipped);
  EXPECT_EQ(r.phases.redistribution_s, 0.0);
  EXPECT_EQ(r.assignment, core::naive_assignment(grid.size(), 64));
}

TEST(AdaptiveRepartitioning, MigratesWhenImbalanced) {
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 512, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 8192;
  wcfg.seed = 32;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  core::PrmRunConfig cfg;
  cfg.procs = 16;
  cfg.strategy = core::Strategy::kRepartition;
  cfg.adaptive = true;
  const auto adaptive = core::simulate_prm_run(w, cfg);
  EXPECT_FALSE(adaptive.repartition_skipped);
  EXPECT_GT(adaptive.phases.redistribution_s, 0.0);
  // And matches the unconditional run exactly.
  cfg.adaptive = false;
  const auto plain = core::simulate_prm_run(w, cfg);
  EXPECT_EQ(adaptive.assignment, plain.assignment);
  EXPECT_DOUBLE_EQ(adaptive.total_s, plain.total_s);
}

// --- samplers through the parallel workload builder ----------------------

TEST(SamplersInWorkload, KindChangesRoadmap) {
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 216, false);
  core::PrmWorkloadConfig uniform;
  uniform.total_attempts = 4096;
  uniform.seed = 33;
  core::PrmWorkloadConfig gaussian = uniform;
  gaussian.prm.sampler = planner::SamplerKind::kGaussian;
  gaussian.prm.sampler_scale = 5.0;
  const auto wu = core::build_prm_workload(*e, grid, uniform);
  const auto wg = core::build_prm_workload(*e, grid, gaussian);
  // Gaussian keeps fewer nodes per attempt and costs more CD per node.
  EXPECT_LT(wg.roadmap.num_vertices(), wu.roadmap.num_vertices());
  EXPECT_GT(wg.roadmap.num_vertices(), 0u);
}

// --- lifeline strategy through the PRM driver -----------------------------

TEST(LifelineInDriver, CompetitiveWithHybrid) {
  const auto e = env::med_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 1000, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 16384;
  wcfg.seed = 34;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  core::PrmRunConfig cfg;
  cfg.procs = 64;
  cfg.strategy = core::Strategy::kNoLB;
  const auto base = core::simulate_prm_run(w, cfg);
  cfg.strategy = core::Strategy::kLifelineWS;
  const auto lifeline = core::simulate_prm_run(w, cfg);
  cfg.strategy = core::Strategy::kHybridWS;
  const auto hybrid = core::simulate_prm_run(w, cfg);
  EXPECT_LT(lifeline.total_s, base.total_s);
  EXPECT_LT(lifeline.total_s, 1.25 * hybrid.total_s);
  EXPECT_GT(lifeline.ws.steal_grants, 0u);
}

// --- environment io ----------------------------------------------------

TEST(EnvIo, RoundTripBuiltinEnvironment) {
  const auto original = env::med_cube();
  std::stringstream buffer;
  ASSERT_TRUE(env::save_environment(*original, buffer));
  auto loaded = env::load_environment(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ((*loaded)->name(), original->name());
  EXPECT_EQ((*loaded)->checker().obstacle_count(),
            original->checker().obstacle_count());
  EXPECT_NEAR((*loaded)->blocked_fraction(5000),
              original->blocked_fraction(5000), 0.02);
  // Same seed produces the same roadmap on the reloaded environment.
  planner::Prm a(*original), b(**loaded);
  a.build(500, 41);
  b.build(500, 41);
  EXPECT_EQ(a.roadmap().num_vertices(), b.roadmap().num_vertices());
}

TEST(EnvIo, RoundTripWithObbAndSphere) {
  std::vector<collision::ObstacleShape> obs{
      geo::Aabb{{1, 2, 3}, {4, 5, 6}},
      geo::Obb{{10, 10, 10}, {2, 3, 4}, geo::Mat3::rot_z(0.7)},
      geo::Sphere{{20, 20, 20}, 5.0}};
  env::Environment e("custom", cspace::CSpace::se3({{0, 0, 0},
                                                    {50, 50, 50}}),
                     std::move(obs), collision::RigidBody::sphere(1.5));
  std::stringstream buffer;
  ASSERT_TRUE(env::save_environment(e, buffer));
  auto loaded = env::load_environment(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ((*loaded)->checker().obstacle_count(), 3u);
  // Behavioral equivalence on point probes.
  Xoshiro256ss rng(42);
  for (int i = 0; i < 500; ++i) {
    const geo::Vec3 p{rng.uniform(0, 50), rng.uniform(0, 50),
                      rng.uniform(0, 50)};
    EXPECT_EQ((*loaded)->checker().point_in_collision(p),
              e.checker().point_in_collision(p));
  }
}

TEST(EnvIo, HandwrittenSceneParses) {
  std::stringstream scene(
      "pmpl-env 1\n"
      "# a hand-written scene\n"
      "name test-scene\n"
      "space se2 0 0 0 10 10 0\n"
      "robot point\n"
      "aabb 4 4 -1 6 6 1\n");
  auto loaded = env::load_environment(scene);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ((*loaded)->space().kind(), cspace::SpaceKind::SE2);
  EXPECT_TRUE((*loaded)->checker().point_in_collision({5, 5, 0}));
  EXPECT_FALSE((*loaded)->checker().point_in_collision({1, 1, 0}));
}

TEST(EnvIo, RejectsMalformed) {
  {
    std::stringstream bad("not-env 1\n");
    EXPECT_FALSE(env::load_environment(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-env 1\nrobot box 1 1 1\n");  // no space
    EXPECT_FALSE(env::load_environment(bad).has_value());
  }
  {
    std::stringstream bad("pmpl-env 1\nspace se3 0 0 0 1 1 1\nbogus 1\n");
    EXPECT_FALSE(env::load_environment(bad).has_value());
  }
}

// --- parallel RRT build ----------------------------------------------------

TEST(ParallelRrt, MatchesSequentialWorkloadForest) {
  const auto e = env::mixed(0.30);
  const core::RadialRegions regions({50, 50, 50}, 45.0, 64, 4, 51, false);
  Xoshiro256ss rng(52);
  const auto root = e->space().at_position({50, 50, 50}, rng);

  core::ParallelRrtConfig pcfg;
  pcfg.total_nodes = 2000;
  pcfg.workers = 4;
  pcfg.seed = 53;
  const auto par = core::parallel_build_rrt(*e, regions, root, pcfg);
  EXPECT_TRUE(graph::is_forest(par.tree));

  core::RrtWorkloadConfig wcfg;
  wcfg.total_nodes = 2000;
  wcfg.seed = 53;
  const auto seq = core::build_rrt_workload(*e, regions, root, wcfg);
  // Branch growth is seed-deterministic: same per-region node counts.
  ASSERT_EQ(par.region_vertices.size(), seq.region_vertices.size());
  for (std::size_t r = 0; r < regions.size(); ++r)
    EXPECT_EQ(par.region_vertices[r].size(), seq.region_vertices[r].size())
        << "region " << r;
}

TEST(ParallelRrt, WorkerStatsAccountForAllBranches) {
  const auto e = env::free_env();
  const core::RadialRegions regions({50, 50, 50}, 40.0, 48, 4, 54, false);
  Xoshiro256ss rng(55);
  const auto root = e->space().at_position({50, 50, 50}, rng);
  core::ParallelRrtConfig cfg;
  cfg.total_nodes = 1000;
  cfg.workers = 3;
  const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
  std::uint64_t executed = 0;
  for (const auto& w : r.workers)
    executed += w.executed_local + w.executed_stolen;
  EXPECT_EQ(executed, 48u);
  EXPECT_GT(r.tree.num_vertices(), 48u);
}

}  // namespace
}  // namespace pmpl
