// Tests for the fault-injection subsystem and the fault-tolerant
// work-stealing engine: FaultInjector semantics, the region-conservation
// property under crashes / lossy links / token loss, Safra ring repair
// driven end-to-end through the DES, and the straggler-aware
// bulk-synchronous phase model.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "loadbal/bulk_sync.hpp"
#include "loadbal/ws_engine.hpp"
#include "runtime/fault.hpp"
#include "runtime/topology.hpp"

namespace pmpl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjector, EmptyPlanIsInactive) {
  runtime::FaultInjector inject{runtime::FaultPlan{}};
  EXPECT_FALSE(inject.active());
  EXPECT_TRUE(runtime::FaultPlan{}.empty());
}

TEST(FaultInjector, CrashTimeIsEarliestForRank) {
  runtime::FaultPlan plan;
  plan.crash(3, 2.0).crash(3, 1.0).crash(5, 4.0);
  const runtime::FaultInjector inject(plan);
  EXPECT_DOUBLE_EQ(inject.crash_time(3), 1.0);
  EXPECT_DOUBLE_EQ(inject.crash_time(5), 4.0);
  EXPECT_EQ(inject.crash_time(0), kInf);
}

TEST(FaultInjector, StretchedServiceIdentityWithoutWindows) {
  runtime::FaultPlan plan;
  plan.crash(0, 10.0);  // active plan, but no straggler windows
  const runtime::FaultInjector inject(plan);
  EXPECT_DOUBLE_EQ(inject.stretched_service(1, 0.37, 2.5), 2.5);
  EXPECT_DOUBLE_EQ(inject.stretched_service(0, 0.0, 0.0), 0.0);
}

TEST(FaultInjector, StretchedServiceInsideWindow) {
  runtime::FaultPlan plan;
  plan.straggler(0, 4.0, 10.0, 20.0);
  const runtime::FaultInjector inject(plan);
  // Entirely inside the window: 2 nominal seconds take 8 wall seconds.
  EXPECT_NEAR(inject.stretched_service(0, 10.0, 2.0), 8.0, 1e-12);
  // Other ranks are unaffected.
  EXPECT_DOUBLE_EQ(inject.stretched_service(1, 10.0, 2.0), 2.0);
}

TEST(FaultInjector, StretchedServiceCrossesWindowBoundary) {
  runtime::FaultPlan plan;
  plan.straggler(0, 4.0, 10.0, 20.0);
  const runtime::FaultInjector inject(plan);
  // Before the window entirely: identity.
  EXPECT_NEAR(inject.stretched_service(0, 5.0, 5.0), 5.0, 1e-12);
  // 2 nominal seconds at rate 1 reach t=10, the remaining 2 nominal run
  // 4x slower: 2 + 8 = 10 wall seconds.
  EXPECT_NEAR(inject.stretched_service(0, 8.0, 4.0), 10.0, 1e-12);
  // Work that spans past the window's end resumes full speed: 10->20 holds
  // 2.5 nominal (10 wall), the rest finishes at rate 1.
  EXPECT_NEAR(inject.stretched_service(0, 10.0, 4.0), 10.0 + 1.5, 1e-12);
}

TEST(FaultInjector, TargetedLinkDropsAndDelays) {
  runtime::FaultPlan plan;
  plan.lossy_link(1, 2, 1.0);                 // always drop 1->2
  plan.links.push_back({3, 4, 0.0, 5e-4, 0.0, kInf});  // delay only
  runtime::FaultInjector inject(plan);
  EXPECT_TRUE(inject.on_message(1, 2, 0.0).dropped);
  EXPECT_FALSE(inject.on_message(2, 1, 0.0).dropped);   // direction matters
  EXPECT_FALSE(inject.on_message(0, 7, 0.0).dropped);
  const auto fate = inject.on_message(3, 4, 1.0);
  EXPECT_FALSE(fate.dropped);
  EXPECT_DOUBLE_EQ(fate.extra_delay_s, 5e-4);
}

TEST(FaultInjector, LinkWindowRespected) {
  runtime::FaultPlan plan;
  plan.lossy_links(1.0, 0.0, 2.0, 3.0);  // drop everything in [2, 3) only
  runtime::FaultInjector inject(plan);
  EXPECT_FALSE(inject.on_message(0, 1, 1.0).dropped);
  EXPECT_TRUE(inject.on_message(0, 1, 2.5).dropped);
  EXPECT_FALSE(inject.on_message(0, 1, 3.5).dropped);
}

TEST(FaultInjector, TokenFaultsHitTokensNotMessages) {
  runtime::FaultPlan plan;
  plan.lose_tokens(1.0);
  runtime::FaultInjector inject(plan);
  EXPECT_TRUE(inject.on_token(0, 1, 0.0).dropped);
  EXPECT_FALSE(inject.on_message(0, 1, 0.0).dropped);
}

TEST(FaultInjector, TokensAlsoSubjectToLinkFaults) {
  runtime::FaultPlan plan;
  plan.lossy_link(0, 1, 1.0);  // no token fault, but the link eats all
  runtime::FaultInjector inject(plan);
  EXPECT_TRUE(inject.on_token(0, 1, 0.0).dropped);
}

// --- work-stealing engine under faults --------------------------------------

std::vector<loadbal::WsItem> make_items(std::size_t n) {
  std::vector<loadbal::WsItem> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    items[i].service_s = 1e-4 * (1.0 + static_cast<double>(i % 7));
    items[i].bytes = 256;
  }
  return items;
}

std::vector<std::uint32_t> block_assignment(std::size_t n, std::uint32_t p) {
  std::vector<std::uint32_t> a(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = static_cast<std::uint32_t>(i * p / n);
  return a;
}

loadbal::WsConfig base_config(loadbal::StealPolicyKind policy =
                                  loadbal::StealPolicyKind::kHybrid) {
  loadbal::WsConfig cfg;
  cfg.policy = policy;
  cfg.cluster = runtime::ClusterSpec::hopper();
  cfg.seed = 7;
  return cfg;
}

/// The acceptance invariant: under any plan that leaves at least one
/// location alive, every region is executed (exactly once durably) by a
/// location that survives past the execution, and termination is declared
/// only after all of that work completed.
void expect_regions_conserved(const loadbal::WsResult& r,
                              std::size_t n,
                              const runtime::FaultInjector& inject) {
  ASSERT_TRUE(r.terminated);
  ASSERT_FALSE(r.hit_event_limit);
  ASSERT_EQ(r.completion_s.size(), n);
  ASSERT_EQ(r.final_owner.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_GE(r.completion_s[i], 0.0) << "region " << i << " never executed";
    EXPECT_LE(r.completion_s[i], r.makespan_s)
        << "region " << i << " completed after declared termination";
    const auto owner = r.final_owner[i];
    EXPECT_LT(r.completion_s[i], inject.crash_time(owner))
        << "region " << i << " 'completed' on rank " << owner
        << " after that rank crashed";
  }
  std::uint64_t executed = 0;
  for (std::size_t l = 0; l < r.local_tasks.size(); ++l)
    executed += r.local_tasks[l] + r.stolen_tasks[l];
  EXPECT_GE(executed, n);  // re-executions may add, never subtract
}

TEST(FaultWs, FaultFreeRunIsDeterministicWithZeroMetrics) {
  const auto items = make_items(64);
  const auto initial = block_assignment(items.size(), 4);
  const auto cfg = base_config();
  const auto a = loadbal::simulate_work_stealing(items, initial, 4, cfg);
  const auto b = loadbal::simulate_work_stealing(items, initial, 4, cfg);
  EXPECT_TRUE(a.terminated);
  EXPECT_FALSE(a.hit_event_limit);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);  // bit-for-bit replay
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.steal_requests, b.steal_requests);
  EXPECT_EQ(a.faults.crashes, 0u);
  EXPECT_EQ(a.faults.messages_dropped, 0u);
  EXPECT_EQ(a.faults.tokens_lost, 0u);
  EXPECT_EQ(a.faults.steal_retries, 0u);
  EXPECT_EQ(a.faults.grant_retransmits, 0u);
  EXPECT_EQ(a.faults.heartbeat_probes, 0u);
  EXPECT_DOUBLE_EQ(a.faults.reexecuted_service_s, 0.0);
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_GE(a.completion_s[i], 0.0);
}

TEST(FaultWs, FaultyRunIsDeterministic) {
  const auto items = make_items(64);
  const auto initial = block_assignment(items.size(), 4);
  auto cfg = base_config();
  cfg.faults.crash(1, 1e-3).lossy_links(0.2).lose_tokens(0.3);
  const auto a = loadbal::simulate_work_stealing(items, initial, 4, cfg);
  const auto b = loadbal::simulate_work_stealing(items, initial, 4, cfg);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults.messages_dropped, b.faults.messages_dropped);
  EXPECT_EQ(a.faults.regions_recovered, b.faults.regions_recovered);
}

TEST(FaultWs, CrashedRankRegionsAreRecovered) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  // Rank 1 holds ~12 regions of ~4e-4 s each; crashing at 5e-4 leaves most
  // of its queue (plus one in-progress region) to recover.
  cfg.faults.crash(1, 5e-4);
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_GT(r.faults.regions_recovered, 0u);
  EXPECT_GT(r.faults.recovery_latency_max_s, 0.0);
  // The in-progress region was re-executed and its service re-spent.
  EXPECT_GE(r.faults.regions_reexecuted, 1u);
  EXPECT_GT(r.faults.reexecuted_service_s, 0.0);
}

TEST(FaultWs, LeaderCrashMigratesTerminationLeader) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  cfg.faults.crash(0, 5e-4);  // rank 0 initiates rounds until it dies
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_EQ(r.faults.crashes, 1u);
}

TEST(FaultWs, AllRanksCrashedNeverDeclaresTermination) {
  const auto items = make_items(32);
  const auto initial = block_assignment(items.size(), 2);
  auto cfg = base_config();
  cfg.faults.crash(0, 1e-4).crash(1, 1e-4);
  const auto r = loadbal::simulate_work_stealing(items, initial, 2, cfg);
  EXPECT_FALSE(r.terminated);  // quiescence was never reached
  EXPECT_FALSE(r.hit_event_limit);
  bool any_unexecuted = false;
  for (const double c : r.completion_s) any_unexecuted |= (c < 0.0);
  EXPECT_TRUE(any_unexecuted);
}

TEST(FaultWs, StragglerWindowAddsAccountedDelay) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  cfg.faults.straggler(2, 8.0, 0.0, kInf);
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_GT(r.faults.straggler_delay_s, 0.0);
}

TEST(FaultWs, LossyLinksDelayButNeverLoseRegions) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  cfg.faults.lossy_links(0.25, 1e-5);
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_GT(r.faults.messages_dropped, 0u);
  EXPECT_GT(r.faults.heartbeat_probes, 0u);
  EXPECT_EQ(r.faults.fenced, 0u);  // detector must ride out 25% loss
}

TEST(FaultWs, TokenLossIsRecoveredByRetryAndRegeneration) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  cfg.faults.lose_tokens(0.5);
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_GT(r.faults.tokens_lost, 0u);
}

TEST(FaultWs, MutedRankIsFencedAndItsWorkRecovered) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  auto cfg = base_config();
  // Every message rank 5 sends is lost: it can never ack a heartbeat, so
  // the detector must declare it dead (a false positive from the protocol's
  // point of view — rank 5 is then fenced so the recovery is safe).
  cfg.faults.lossy_link(5, runtime::kAnyRank, 1.0);
  const runtime::FaultInjector inject(cfg.faults);
  const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
  expect_regions_conserved(r, items.size(), inject);
  EXPECT_GE(r.faults.fenced, 1u);
  EXPECT_GT(r.faults.regions_recovered, 0u);
}

TEST(FaultWs, RegionConservationPropertySweep) {
  const auto items = make_items(96);
  const auto initial = block_assignment(items.size(), 8);
  std::vector<runtime::FaultPlan> plans;
  plans.emplace_back().crash(1, 4e-4);
  plans.emplace_back().crash(1, 4e-4).crash(5, 8e-4).lossy_links(0.2, 1e-5);
  plans.emplace_back().lossy_links(0.3, 2e-5).lose_tokens(0.4);
  plans.emplace_back()
      .crash(2, 6e-4)
      .straggler(3, 6.0, 0.0, 5e-2)
      .lossy_links(0.15)
      .lose_tokens(0.25);
  const loadbal::StealPolicyKind policies[] = {
      loadbal::StealPolicyKind::kRandK, loadbal::StealPolicyKind::kDiffusive,
      loadbal::StealPolicyKind::kHybrid};
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    const runtime::FaultInjector inject(plans[pi]);
    for (const auto policy : policies) {
      auto cfg = base_config(policy);
      cfg.faults = plans[pi];
      const auto r = loadbal::simulate_work_stealing(items, initial, 8, cfg);
      SCOPED_TRACE(::testing::Message()
                   << "plan " << pi << " policy " << static_cast<int>(policy));
      expect_regions_conserved(r, items.size(), inject);
    }
  }
}

// --- bulk-synchronous straggler model ---------------------------------------

TEST(BulkSyncFault, InjectorOverloadIdentityWithoutWindows) {
  const std::vector<double> service{1.0, 2.0, 3.0, 4.0};
  const std::vector<std::uint32_t> owner{0, 0, 1, 1};
  const auto cluster = runtime::ClusterSpec::hopper();
  runtime::FaultPlan plan;
  plan.crash(0, 100.0);  // active injector, no straggler windows
  const runtime::FaultInjector inject(plan);
  const auto plain = loadbal::static_phase(service, owner, 2, cluster);
  const auto faulty =
      loadbal::static_phase(service, owner, 2, cluster, inject, 0.0);
  EXPECT_DOUBLE_EQ(faulty.time_s, plain.time_s);
  EXPECT_DOUBLE_EQ(faulty.straggler_delay_s, 0.0);
  ASSERT_EQ(faulty.busy_s.size(), plain.busy_s.size());
  for (std::size_t i = 0; i < plain.busy_s.size(); ++i)
    EXPECT_DOUBLE_EQ(faulty.busy_s[i], plain.busy_s[i]);
}

TEST(BulkSyncFault, StragglerStretchesBarrier) {
  const std::vector<double> service{1.0, 1.0, 1.0, 1.0};
  const std::vector<std::uint32_t> owner{0, 0, 1, 1};
  const auto cluster = runtime::ClusterSpec::hopper();
  runtime::FaultPlan plan;
  plan.straggler(0, 3.0, 0.0, kInf);
  const runtime::FaultInjector inject(plan);
  const auto r = loadbal::static_phase(service, owner, 2, cluster, inject, 0.0);
  EXPECT_NEAR(r.busy_s[0], 6.0, 1e-12);   // 2 nominal seconds at 3x
  EXPECT_NEAR(r.busy_s[1], 2.0, 1e-12);
  EXPECT_NEAR(r.straggler_delay_s, 4.0, 1e-12);
  // The barrier waits for the straggler.
  const auto plain = loadbal::static_phase(service, owner, 2, cluster);
  EXPECT_NEAR(r.time_s - plain.time_s, 4.0, 1e-12);
}

TEST(BulkSyncFault, WindowedStragglerOnlyStretchesInsideWindow) {
  const std::vector<double> service{4.0, 4.0};
  const std::vector<std::uint32_t> owner{0, 1};
  const auto cluster = runtime::ClusterSpec::hopper();
  runtime::FaultPlan plan;
  plan.straggler(0, 2.0, 1.0, 3.0);  // 2 nominal seconds doubled
  const runtime::FaultInjector inject(plan);
  const auto r = loadbal::static_phase(service, owner, 2, cluster, inject, 0.0);
  // 1s at rate 1, then [1,3) holds 1 nominal (2 wall), then 2 more at rate 1.
  EXPECT_NEAR(r.busy_s[0], 1.0 + 2.0 + 2.0, 1e-12);
  EXPECT_NEAR(r.straggler_delay_s, 1.0, 1e-12);
}

}  // namespace
}  // namespace pmpl
