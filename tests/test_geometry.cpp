// Tests for geometry/: vectors, quaternions, transforms, shapes,
// intersection routines, Morton codes.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geometry/intersect.hpp"
#include "geometry/morton.hpp"
#include "geometry/quat.hpp"
#include "geometry/shapes.hpp"
#include "geometry/transform.hpp"
#include "geometry/vec.hpp"
#include "util/rng.hpp"

namespace pmpl::geo {
namespace {

constexpr double kPi = 3.14159265358979323846;

// --- Vec --------------------------------------------------------------

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
}

TEST(Vec3, NormAndNormalized) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  // Zero vector falls back to +x.
  EXPECT_EQ((Vec3{0, 0, 0}).normalized(), (Vec3{1, 0, 0}));
}

TEST(Vec3, IndexingMatchesComponents) {
  Vec3 v{7, 8, 9};
  EXPECT_EQ(v[0], 7.0);
  EXPECT_EQ(v[1], 8.0);
  EXPECT_EQ(v[2], 9.0);
  v[1] = 42;
  EXPECT_EQ(v.y, 42.0);
}

TEST(Vec2, CrossIsSignedArea) {
  const Vec2 a{1, 0}, b{0, 1};
  EXPECT_EQ(a.cross(b), 1.0);
  EXPECT_EQ(b.cross(a), -1.0);
}

TEST(Mat3, IdentityLeavesVectors) {
  const Vec3 v{1, -2, 3};
  EXPECT_EQ(Mat3::identity() * v, v);
}

TEST(Mat3, RotZQuarterTurn) {
  const Mat3 r = Mat3::rot_z(kPi / 2.0);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Mat3, TransposeOfRotationIsInverse) {
  const Mat3 r = Mat3::rot_z(0.7);
  const Vec3 v{1, 2, 3};
  const Vec3 back = r.transposed() * (r * v);
  EXPECT_NEAR(back.x, v.x, 1e-12);
  EXPECT_NEAR(back.y, v.y, 1e-12);
  EXPECT_NEAR(back.z, v.z, 1e-12);
}

TEST(Mat3, MatrixProductComposesRotations) {
  const Mat3 a = Mat3::rot_z(0.3), b = Mat3::rot_z(0.4);
  const Vec3 v{1, 0, 0};
  const Vec3 via_product = (a * b) * v;
  const Vec3 via_sequential = a * (b * v);
  EXPECT_NEAR(via_product.x, via_sequential.x, 1e-12);
  EXPECT_NEAR(via_product.y, via_sequential.y, 1e-12);
}

// --- Quat -------------------------------------------------------------

TEST(Quat, IdentityRotatesNothing) {
  const Vec3 v{1, 2, 3};
  EXPECT_EQ(Quat::identity().rotate(v), v);
}

TEST(Quat, AxisAngleQuarterTurnZ) {
  const Quat q = Quat::from_axis_angle({0, 0, 1}, kPi / 2.0);
  const Vec3 v = q.rotate({1, 0, 0});
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Quat, RotationPreservesLength) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 200; ++i) {
    const Quat q = Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform());
    const Vec3 v{rng.uniform(-10, 10), rng.uniform(-10, 10),
                 rng.uniform(-10, 10)};
    EXPECT_NEAR(q.rotate(v).norm(), v.norm(), 1e-9);
  }
}

TEST(Quat, UniformIsUnit) {
  Xoshiro256ss rng(6);
  for (int i = 0; i < 200; ++i) {
    const Quat q = Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform());
    EXPECT_NEAR(q.norm(), 1.0, 1e-12);
  }
}

TEST(Quat, MatrixAgreesWithRotate) {
  Xoshiro256ss rng(8);
  for (int i = 0; i < 100; ++i) {
    const Quat q = Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform());
    const Vec3 v{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 a = q.rotate(v);
    const Vec3 b = q.to_matrix() * v;
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_NEAR(a.y, b.y, 1e-9);
    EXPECT_NEAR(a.z, b.z, 1e-9);
  }
}

TEST(Quat, ConjugateInvertsRotation) {
  const Quat q = Quat::from_axis_angle({1, 1, 0}, 0.9);
  const Vec3 v{2, -1, 4};
  const Vec3 back = q.conjugate().rotate(q.rotate(v));
  EXPECT_NEAR(back.x, v.x, 1e-9);
  EXPECT_NEAR(back.y, v.y, 1e-9);
  EXPECT_NEAR(back.z, v.z, 1e-9);
}

TEST(Quat, AngleToSelfIsZero) {
  const Quat q = Quat::from_axis_angle({0, 1, 0}, 0.8);
  EXPECT_NEAR(q.angle_to(q), 0.0, 1e-6);
  // q and -q represent the same rotation.
  const Quat nq{-q.w, -q.x, -q.y, -q.z};
  EXPECT_NEAR(q.angle_to(nq), 0.0, 1e-6);
}

TEST(Quat, AngleToMeasuresRotationDifference) {
  const Quat a = Quat::identity();
  const Quat b = Quat::from_axis_angle({0, 0, 1}, 1.0);
  EXPECT_NEAR(a.angle_to(b), 1.0, 1e-9);
}

TEST(Quat, SlerpEndpoints) {
  const Quat a = Quat::identity();
  const Quat b = Quat::from_axis_angle({0, 0, 1}, 1.2);
  EXPECT_NEAR(a.slerp(b, 0.0).angle_to(a), 0.0, 1e-9);
  EXPECT_NEAR(a.slerp(b, 1.0).angle_to(b), 0.0, 1e-9);
}

TEST(Quat, SlerpHalfwayIsHalfAngle) {
  const Quat a = Quat::identity();
  const Quat b = Quat::from_axis_angle({0, 0, 1}, 1.2);
  const Quat mid = a.slerp(b, 0.5);
  EXPECT_NEAR(a.angle_to(mid), 0.6, 1e-9);
  EXPECT_NEAR(mid.angle_to(b), 0.6, 1e-9);
}

TEST(Quat, SlerpTakesShortArc) {
  const Quat a = Quat::from_axis_angle({0, 0, 1}, 0.1);
  Quat b = Quat::from_axis_angle({0, 0, 1}, 0.4);
  b = {-b.w, -b.x, -b.y, -b.z};  // same rotation, antipodal representation
  const Quat mid = a.slerp(b, 0.5);
  EXPECT_NEAR(mid.angle_to(Quat::from_axis_angle({0, 0, 1}, 0.25)), 0.0,
              1e-9);
}

// --- Transform ----------------------------------------------------------

TEST(Transform, ApplyRotatesThenTranslates) {
  const Transform t{Quat::from_axis_angle({0, 0, 1}, kPi / 2.0), {10, 0, 0}};
  const Vec3 p = t.apply(Vec3{1, 0, 0});
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Transform, InverseUndoes) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 50; ++i) {
    const Transform t{
        Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
        {rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)}};
    const Vec3 p{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 back = t.inverse().apply(t.apply(p));
    EXPECT_NEAR(back.x, p.x, 1e-9);
    EXPECT_NEAR(back.y, p.y, 1e-9);
    EXPECT_NEAR(back.z, p.z, 1e-9);
  }
}

TEST(Transform, CompositionAssociativity) {
  const Transform a{Quat::from_axis_angle({0, 0, 1}, 0.5), {1, 2, 3}};
  const Transform b{Quat::from_axis_angle({1, 0, 0}, 0.3), {-1, 0, 2}};
  const Vec3 p{0.5, 0.25, -0.75};
  const Vec3 via_compose = (a * b).apply(p);
  const Vec3 via_seq = a.apply(b.apply(p));
  EXPECT_NEAR(via_compose.x, via_seq.x, 1e-9);
  EXPECT_NEAR(via_compose.y, via_seq.y, 1e-9);
  EXPECT_NEAR(via_compose.z, via_seq.z, 1e-9);
}

TEST(Transform, PlacedObbBoundsContainCorners) {
  const Transform t{Quat::from_axis_angle({0, 0, 1}, 0.6), {3, 4, 5}};
  const Obb body{{0, 0, 0}, {1, 2, 3}, Mat3::identity()};
  const Obb placed = t.apply(body);
  const Aabb bounds = placed.bounds();
  // All 8 body corners must land inside the reported bounds.
  for (int sx : {-1, 1})
    for (int sy : {-1, 1})
      for (int sz : {-1, 1}) {
        const Vec3 corner = t.apply(Vec3{1.0 * sx, 2.0 * sy, 3.0 * sz});
        EXPECT_TRUE(bounds.expanded(1e-9).contains(corner));
      }
}

// --- Aabb ---------------------------------------------------------------

TEST(Aabb, ContainsAndOverlap) {
  const Aabb a{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(a.contains({1, 1, 1}));
  EXPECT_TRUE(a.contains({0, 0, 0}));  // boundary closed
  EXPECT_FALSE(a.contains({2.1, 1, 1}));
  const Aabb b{{1, 1, 1}, {3, 3, 3}};
  EXPECT_TRUE(a.overlaps(b));
  const Aabb c{{5, 5, 5}, {6, 6, 6}};
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Aabb, VolumeAndSurface) {
  const Aabb a{{0, 0, 0}, {2, 3, 4}};
  EXPECT_DOUBLE_EQ(a.volume(), 24.0);
  EXPECT_DOUBLE_EQ(a.surface_area(), 2.0 * (6 + 12 + 8));
}

TEST(Aabb, OverlapVolume) {
  const Aabb a{{0, 0, 0}, {2, 2, 2}};
  const Aabb b{{1, 1, 1}, {3, 3, 3}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_volume(a), 8.0);
  const Aabb c{{9, 9, 9}, {10, 10, 10}};
  EXPECT_DOUBLE_EQ(a.overlap_volume(c), 0.0);
}

TEST(Aabb, MergeAndEmpty) {
  Aabb e = Aabb::empty();
  e = e.merged({{1, 1, 1}, {2, 2, 2}});
  e = e.merged({{-1, 0, 0}, {0, 1, 1}});
  EXPECT_EQ(e.lo, (Vec3{-1, 0, 0}));
  EXPECT_EQ(e.hi, (Vec3{2, 2, 2}));
}

TEST(Aabb, ClampProjectsInside) {
  const Aabb a{{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(a.clamp({2, 0.5, -1}), (Vec3{1, 0.5, 0}));
}

// --- intersection truth table ------------------------------------------

TEST(Intersect, SphereSphere) {
  EXPECT_TRUE(intersects(Sphere{{0, 0, 0}, 1}, Sphere{{1.5, 0, 0}, 1}));
  EXPECT_FALSE(intersects(Sphere{{0, 0, 0}, 1}, Sphere{{2.5, 0, 0}, 1}));
  // Tangent counts as touching.
  EXPECT_TRUE(intersects(Sphere{{0, 0, 0}, 1}, Sphere{{2, 0, 0}, 1}));
}

TEST(Intersect, SphereAabb) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(intersects(Sphere{{0.5, 0.5, 0.5}, 0.1}, box));  // inside
  EXPECT_TRUE(intersects(Sphere{{1.5, 0.5, 0.5}, 0.6}, box));  // face
  EXPECT_FALSE(intersects(Sphere{{2.0, 2.0, 2.0}, 0.5}, box));
  // Corner proximity: distance to corner (1,1,1) from (1.5,1.5,1.5) is
  // sqrt(0.75) ~ 0.866.
  EXPECT_TRUE(intersects(Sphere{{1.5, 1.5, 1.5}, 0.9}, box));
  EXPECT_FALSE(intersects(Sphere{{1.5, 1.5, 1.5}, 0.8}, box));
}

TEST(Intersect, ObbObbAxisAligned) {
  const Obb a{{0, 0, 0}, {1, 1, 1}, Mat3::identity()};
  const Obb b{{1.5, 0, 0}, {1, 1, 1}, Mat3::identity()};
  const Obb c{{3.5, 0, 0}, {1, 1, 1}, Mat3::identity()};
  EXPECT_TRUE(intersects(a, b));
  EXPECT_FALSE(intersects(a, c));
}

TEST(Intersect, ObbObbRotatedCorners) {
  // A unit cube rotated 45 deg about z reaches sqrt(2) along x.
  const Obb a{{0, 0, 0}, {1, 1, 1}, Mat3::rot_z(kPi / 4.0)};
  const Obb far_box{{2.45, 0, 0}, {1, 1, 1}, Mat3::identity()};
  const Obb near_box{{2.35, 0, 0}, {1, 1, 1}, Mat3::identity()};
  EXPECT_FALSE(intersects(a, far_box));
  EXPECT_TRUE(intersects(a, near_box));
}

TEST(Intersect, ObbObbMatchesSampledGroundTruth) {
  // Property: SAT result agrees with a dense point-sampling containment
  // check whenever the sampling finds an intersection witness.
  Xoshiro256ss rng(21);
  int checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Obb a{{0, 0, 0},
                {rng.uniform(0.4, 1.2), rng.uniform(0.4, 1.2),
                 rng.uniform(0.4, 1.2)},
                Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform())
                    .to_matrix()};
    const Obb b{{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)},
                {rng.uniform(0.4, 1.2), rng.uniform(0.4, 1.2),
                 rng.uniform(0.4, 1.2)},
                Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform())
                    .to_matrix()};
    // Sample points of b; if any is inside a, SAT must report hit.
    bool witness = false;
    for (int i = 0; i < 300 && !witness; ++i) {
      const Vec3 local{rng.uniform(-b.half.x, b.half.x),
                       rng.uniform(-b.half.y, b.half.y),
                       rng.uniform(-b.half.z, b.half.z)};
      const Vec3 world = b.rot * local + b.center;
      witness = a.contains(world);
    }
    if (witness) {
      EXPECT_TRUE(intersects(a, b)) << "trial " << trial;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);  // the sweep actually exercised hits
}

TEST(Intersect, SegmentAabb) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(intersects(Segment{{-1, 0.5, 0.5}, {2, 0.5, 0.5}}, box));
  EXPECT_FALSE(intersects(Segment{{-1, 2, 2}, {2, 2, 2}}, box));
  // Segment ending before the box.
  EXPECT_FALSE(intersects(Segment{{-2, 0.5, 0.5}, {-1, 0.5, 0.5}}, box));
  // Fully inside.
  EXPECT_TRUE(intersects(Segment{{0.2, 0.2, 0.2}, {0.8, 0.8, 0.8}}, box));
  // Degenerate segment = point.
  EXPECT_TRUE(intersects(Segment{{0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}}, box));
}

TEST(Intersect, SegmentObbRotated) {
  const Obb box{{0, 0, 0}, {1, 0.1, 1}, Mat3::rot_z(kPi / 4.0)};
  // A vertical segment through the origin must hit the thin rotated slab.
  EXPECT_TRUE(intersects(Segment{{0, -2, 0}, {0, 2, 0}}, box));
  // Far away parallel segment misses.
  EXPECT_FALSE(intersects(Segment{{3, -2, 0}, {3, 2, 0}}, box));
}

TEST(Intersect, SegmentSphere) {
  const Sphere s{{0, 0, 0}, 1};
  EXPECT_TRUE(intersects(Segment{{-2, 0, 0}, {2, 0, 0}}, s));
  EXPECT_FALSE(intersects(Segment{{-2, 2, 0}, {2, 2, 0}}, s));
  EXPECT_TRUE(intersects(Segment{{-2, 0.99, 0}, {2, 0.99, 0}}, s));
}

TEST(Intersect, RayAabbEntryDistance) {
  const Aabb box{{1, -1, -1}, {2, 1, 1}};
  const auto t = ray_hit(Ray{{0, 0, 0}, {1, 0, 0}}, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0, 1e-12);
  EXPECT_FALSE(ray_hit(Ray{{0, 0, 0}, {-1, 0, 0}}, box).has_value());
}

TEST(Intersect, RayFromInsideHitsAtZero) {
  const Aabb box{{-1, -1, -1}, {1, 1, 1}};
  const auto t = ray_hit(Ray{{0, 0, 0}, {1, 0, 0}}, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.0);
}

TEST(Intersect, RaySphere) {
  const Sphere s{{5, 0, 0}, 1};
  const auto t = ray_hit(Ray{{0, 0, 0}, {1, 0, 0}}, s);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.0, 1e-12);
  EXPECT_FALSE(ray_hit(Ray{{0, 0, 0}, {0, 1, 0}}, s).has_value());
}

TEST(Intersect, RayObb) {
  const Obb box{{5, 0, 0}, {1, 1, 1}, Mat3::rot_z(kPi / 4.0)};
  const auto t = ray_hit(Ray{{0, 0, 0}, {1, 0, 0}}, box);
  ASSERT_TRUE(t.has_value());
  // Rotated cube's near corner along x is at 5 - sqrt(2).
  EXPECT_NEAR(*t, 5.0 - std::sqrt(2.0), 1e-9);
}

TEST(Intersect, RayTriangleMollerTrumbore) {
  const Triangle tri{{Vec3{0, 0, 1}, Vec3{1, 0, 1}, Vec3{0, 1, 1}}};
  const auto hit = ray_hit(Ray{{0.2, 0.2, 0}, {0, 0, 1}}, tri);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(*hit, 1.0, 1e-12);
  EXPECT_FALSE(ray_hit(Ray{{0.9, 0.9, 0}, {0, 0, 1}}, tri).has_value());
  // Parallel ray misses.
  EXPECT_FALSE(ray_hit(Ray{{0, 0, 0}, {1, 0, 0}}, tri).has_value());
}

TEST(Intersect, Distance2ToAabb) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(distance2({0.5, 0.5, 0.5}, box), 0.0);
  EXPECT_DOUBLE_EQ(distance2({2, 0.5, 0.5}, box), 1.0);
  EXPECT_DOUBLE_EQ(distance2({2, 2, 2}, box), 3.0);
}

TEST(Intersect, ClosestPointOnSegment) {
  const Segment s{{0, 0, 0}, {10, 0, 0}};
  EXPECT_EQ(closest_point(s, {5, 3, 0}), (Vec3{5, 0, 0}));
  EXPECT_EQ(closest_point(s, {-5, 0, 0}), (Vec3{0, 0, 0}));
  EXPECT_EQ(closest_point(s, {15, 0, 0}), (Vec3{10, 0, 0}));
}

// --- morton -------------------------------------------------------------

TEST(Morton, SpreadIsReversibleByMask) {
  // morton3 of axis-aligned unit steps produces distinct interleaved bits.
  EXPECT_EQ(morton3(1, 0, 0), 1u);
  EXPECT_EQ(morton3(0, 1, 0), 2u);
  EXPECT_EQ(morton3(0, 0, 1), 4u);
  EXPECT_EQ(morton3(1, 1, 1), 7u);
}

TEST(Morton, KeyPreservesLocalityOrdering) {
  const Aabb bounds{{0, 0, 0}, {100, 100, 100}};
  const auto near_origin = morton_key({1, 1, 1}, bounds);
  const auto far_corner = morton_key({99, 99, 99}, bounds);
  EXPECT_LT(near_origin, far_corner);
}

TEST(Morton, KeyClampsOutOfBounds) {
  const Aabb bounds{{0, 0, 0}, {1, 1, 1}};
  EXPECT_EQ(morton_key({-5, -5, -5}, bounds), morton_key({0, 0, 0}, bounds));
  EXPECT_EQ(morton_key({5, 5, 5}, bounds), morton_key({1, 1, 1}, bounds));
}

TEST(Morton, DistinctCellsDistinctKeys) {
  const Aabb bounds{{0, 0, 0}, {8, 8, 8}};
  std::set<std::uint64_t> keys;
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y)
      for (int z = 0; z < 8; ++z)
        keys.insert(morton_key({x + 0.5, y + 0.5, z + 0.5}, bounds));
  EXPECT_EQ(keys.size(), 512u);
}

}  // namespace
}  // namespace pmpl::geo
