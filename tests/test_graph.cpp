// Tests for graph/: adjacency graph, union-find, shortest paths, tree
// utilities, component labeling.

#include <gtest/gtest.h>

#include "graph/adjacency_graph.hpp"
#include "graph/components.hpp"
#include "graph/shortest_path.hpp"
#include "graph/tree_utils.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace pmpl::graph {
namespace {

struct VP {
  int tag = 0;
};
struct EP {
  double w = 1.0;
};
using G = AdjacencyGraph<VP, EP>;

// --- AdjacencyGraph -----------------------------------------------------

TEST(Graph, AddVerticesAndEdges) {
  G g;
  const auto a = g.add_vertex({1});
  const auto b = g.add_vertex({2});
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.add_edge(a, b, {3.0}));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
}

TEST(Graph, RejectsDuplicateAndSelfEdges) {
  G g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  EXPECT_TRUE(g.add_edge(a, b));
  EXPECT_FALSE(g.add_edge(a, b));
  EXPECT_FALSE(g.add_edge(b, a));
  EXPECT_FALSE(g.add_edge(a, a));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveEdge) {
  G g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_TRUE(g.remove_edge(a, b));
  EXPECT_FALSE(g.has_edge(a, b));
  EXPECT_FALSE(g.remove_edge(a, b));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(b), 1u);
}

TEST(Graph, EdgePropertiesStoredBothDirections) {
  G g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  g.add_edge(a, b, {2.5});
  EXPECT_DOUBLE_EQ(g.edges_of(a)[0].prop.w, 2.5);
  EXPECT_DOUBLE_EQ(g.edges_of(b)[0].prop.w, 2.5);
}

TEST(Graph, VertexPayloadMutable) {
  G g;
  const auto a = g.add_vertex({5});
  g.vertex(a).tag = 9;
  EXPECT_EQ(g.vertex(a).tag, 9);
}

// --- UnionFind ------------------------------------------------------------

TEST(UnionFind, InitiallySingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, UniteMergesComponents) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already together
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.component_size(1), 3u);
}

TEST(UnionFind, AddGrows) {
  UnionFind uf(2);
  const auto id = uf.add();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(uf.size(), 3u);
  EXPECT_EQ(uf.num_components(), 3u);
}

TEST(UnionFind, RandomizedAgainstLabelPropagation) {
  Xoshiro256ss rng(41);
  constexpr std::size_t kN = 200;
  UnionFind uf(kN);
  std::vector<std::uint32_t> label(kN);
  for (std::size_t i = 0; i < kN; ++i) label[i] = static_cast<std::uint32_t>(i);
  for (int ops = 0; ops < 300; ++ops) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(kN));
    const auto b = static_cast<std::uint32_t>(rng.uniform_u64(kN));
    uf.unite(a, b);
    const auto la = label[a], lb = label[b];
    if (la != lb)
      for (auto& l : label)
        if (l == lb) l = la;
  }
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = i + 1; j < kN; ++j)
      EXPECT_EQ(uf.connected(static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j)),
                label[i] == label[j]);
}

// --- shortest path ---------------------------------------------------------

G grid_graph(int n, std::vector<VertexId>* ids_out = nullptr) {
  // n x n grid with unit weights.
  G g;
  std::vector<VertexId> ids;
  for (int i = 0; i < n * n; ++i) ids.push_back(g.add_vertex());
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) {
      if (c + 1 < n) g.add_edge(ids[r * n + c], ids[r * n + c + 1], {1.0});
      if (r + 1 < n) g.add_edge(ids[r * n + c], ids[(r + 1) * n + c], {1.0});
    }
  if (ids_out) *ids_out = ids;
  return g;
}

TEST(ShortestPath, DijkstraOnGrid) {
  const G g = grid_graph(5);
  const auto path = dijkstra<VP, EP>(g, 0, 24,
                                     [](const EP& e) { return e.w; });
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 8.0);  // 4 right + 4 down
  EXPECT_EQ(path->vertices.size(), 9u);
  EXPECT_EQ(path->vertices.front(), 0u);
  EXPECT_EQ(path->vertices.back(), 24u);
}

TEST(ShortestPath, PrefersLighterLongerRoute) {
  G g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  g.add_edge(a, c, {10.0});
  g.add_edge(a, b, {1.0});
  g.add_edge(b, c, {1.0});
  const auto path = dijkstra<VP, EP>(g, a, c, [](const EP& e) { return e.w; });
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 2.0);
  EXPECT_EQ(path->vertices.size(), 3u);
}

TEST(ShortestPath, DisconnectedReturnsNullopt) {
  G g;
  const auto a = g.add_vertex();
  g.add_vertex();  // isolated
  const auto c = g.add_vertex();
  const auto none =
      dijkstra<VP, EP>(g, a, c, [](const EP& e) { return e.w; });
  EXPECT_FALSE(none.has_value());
}

TEST(ShortestPath, AStarMatchesDijkstraWithAdmissibleHeuristic) {
  std::vector<VertexId> ids;
  const G g = grid_graph(8, &ids);
  // Manhattan heuristic on grid coordinates is admissible here.
  auto coord = [&](VertexId v) {
    return std::pair<int, int>(static_cast<int>(v) / 8,
                               static_cast<int>(v) % 8);
  };
  const VertexId goal = 63;
  const auto h = [&](VertexId v) {
    const auto [r, c] = coord(v);
    const auto [gr, gc] = coord(goal);
    return static_cast<double>(std::abs(r - gr) + std::abs(c - gc));
  };
  const auto d = dijkstra<VP, EP>(g, 0, goal, [](const EP& e) { return e.w; });
  const auto a = astar<VP, EP>(g, 0, goal, [](const EP& e) { return e.w; }, h);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(d->cost, a->cost);
}

TEST(ShortestPath, SourceEqualsDestination) {
  const G g = grid_graph(3);
  const auto path = dijkstra<VP, EP>(g, 4, 4, [](const EP& e) { return e.w; });
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 0.0);
  EXPECT_EQ(path->vertices.size(), 1u);
}

TEST(ShortestPath, Reachable) {
  G g;
  const auto a = g.add_vertex();
  const auto b = g.add_vertex();
  const auto c = g.add_vertex();
  g.add_edge(a, b);
  EXPECT_TRUE(reachable(g, a, b));
  EXPECT_FALSE(reachable(g, a, c));
  EXPECT_TRUE(reachable(g, c, c));
}

// --- tree utils -------------------------------------------------------------

TEST(TreeUtils, ForestPathFindsUniquePath) {
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < 6; ++i) v.push_back(g.add_vertex());
  // Path tree: 0-1-2-3, branch 1-4, isolated 5.
  g.add_edge(v[0], v[1]);
  g.add_edge(v[1], v[2]);
  g.add_edge(v[2], v[3]);
  g.add_edge(v[1], v[4]);
  const auto path = forest_path(g, v[0], v[3]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<VertexId>{v[0], v[1], v[2], v[3]}));
  EXPECT_FALSE(forest_path(g, v[0], v[5]).has_value());
}

TEST(TreeUtils, AddEdgeAcyclicKeepsForest) {
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < 4; ++i) v.push_back(g.add_vertex());
  auto cost = [](const EP& e) { return e.w; };
  add_edge_acyclic<VP, EP>(g, v[0], v[1], {1.0}, cost);
  add_edge_acyclic<VP, EP>(g, v[1], v[2], {5.0}, cost);
  add_edge_acyclic<VP, EP>(g, v[2], v[3], {1.0}, cost);
  EXPECT_TRUE(is_forest(g));
  // Closing edge 0-3 with weight 2 removes the worst edge on the cycle
  // (1-2 at weight 5).
  EXPECT_TRUE((add_edge_acyclic<VP, EP>(g, v[0], v[3], {2.0}, cost)));
  EXPECT_TRUE(is_forest(g));
  EXPECT_FALSE(g.has_edge(v[1], v[2]));
  EXPECT_TRUE(g.has_edge(v[0], v[3]));
}

TEST(TreeUtils, AddEdgeAcyclicRejectsWorstNewEdge) {
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < 3; ++i) v.push_back(g.add_vertex());
  auto cost = [](const EP& e) { return e.w; };
  add_edge_acyclic<VP, EP>(g, v[0], v[1], {1.0}, cost);
  add_edge_acyclic<VP, EP>(g, v[1], v[2], {1.0}, cost);
  // New edge is the heaviest on its would-be cycle: graph unchanged.
  EXPECT_FALSE((add_edge_acyclic<VP, EP>(g, v[0], v[2], {9.0}, cost)));
  EXPECT_FALSE(g.has_edge(v[0], v[2]));
  EXPECT_TRUE(is_forest(g));
}

TEST(TreeUtils, IsForestDetectsCycle) {
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < 3; ++i) v.push_back(g.add_vertex());
  g.add_edge(v[0], v[1]);
  g.add_edge(v[1], v[2]);
  EXPECT_TRUE(is_forest(g));
  g.add_edge(v[2], v[0]);
  EXPECT_FALSE(is_forest(g));
}

TEST(TreeUtils, RandomizedAcyclicInsertionStaysForest) {
  Xoshiro256ss rng(43);
  G g;
  std::vector<VertexId> v;
  for (int i = 0; i < 40; ++i) v.push_back(g.add_vertex());
  auto cost = [](const EP& e) { return e.w; };
  for (int i = 0; i < 200; ++i) {
    const auto a = v[rng.index(v.size())];
    const auto b = v[rng.index(v.size())];
    if (a == b) continue;
    add_edge_acyclic<VP, EP>(g, a, b, {rng.uniform(0.1, 10.0)}, cost);
    ASSERT_TRUE(is_forest(g)) << "iteration " << i;
  }
}

// --- components --------------------------------------------------------------

TEST(Components, LabelsAndSummary) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {3, 4}};
  const auto labels = component_labels(6, edges);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[5]);
  const auto s = summarize_components(labels);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.largest, 3u);
  EXPECT_DOUBLE_EQ(s.largest_fraction, 0.5);
}

TEST(Components, EmptyGraph) {
  const auto labels = component_labels(0, {});
  EXPECT_TRUE(labels.empty());
  const auto s = summarize_components(labels);
  EXPECT_EQ(s.count, 0u);
}

}  // namespace
}  // namespace pmpl::graph
