// Hot-path kernel guarantees:
//  - fixed-seed roadmaps are bit-identical to hashes captured from the
//    pre-overhaul kernels (recursive AoS kd-tree, sequential local planner,
//    std::function BVH traversal) — the overhaul may only change speed;
//  - nearest() and plan() perform zero heap allocations once warm, verified
//    through a global operator new replacement local to this binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "core/parallel_build.hpp"
#include "core/parallel_build_rrt.hpp"
#include "core/radial_regions.hpp"
#include "core/region_grid.hpp"
#include "cspace/local_planner.hpp"
#include "env/builders.hpp"
#include "planner/knn.hpp"
#include "planner/prm.hpp"
#include "planner/rrt.hpp"
#include "util/rng.hpp"

// --- allocation counting hook ---------------------------------------------
// Replaces the replaceable global allocation functions for this test binary
// only. The counter is the observable; tests snapshot it around a measured
// region that must not allocate.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pmpl {
namespace {

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

// --- zero-allocation guarantees -------------------------------------------

TEST(HotPathAllocations, KdTreeNearestIsAllocationFreeOnceWarm) {
  const cspace::CSpace space =
      cspace::CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  Xoshiro256ss rng(51);
  planner::KdTreeKnn tree(space);
  for (int i = 0; i < 3000; ++i)
    tree.insert(static_cast<graph::VertexId>(i), space.sample(rng));

  std::vector<cspace::Config> queries;
  for (int q = 0; q < 200; ++q) queries.push_back(space.sample(rng));

  // Warmup: triggers the lazy rebuild (the insert burst leaves ~500 points
  // buffered) and sizes the query scratch.
  planner::PlannerStats stats;
  for (int q = 0; q < 50; ++q) tree.nearest(queries[q % 200], 6, &stats);

  const std::uint64_t before = allocation_count();
  double checksum = 0.0;
  for (const auto& q : queries) {
    const auto nn = tree.nearest(q, 6, &stats);
    checksum += nn.front().distance;
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "checksum=" << checksum;
}

TEST(HotPathAllocations, LocalPlanIsAllocationFreeOnceWarm) {
  const auto e = env::med_cube();
  const cspace::LocalPlanner lp(e->space(), e->validity(), 1.0);
  Xoshiro256ss rng(52);

  std::vector<std::pair<cspace::Config, cspace::Config>> edges;
  while (edges.size() < 40) {
    cspace::Config a = e->space().sample(rng);
    cspace::Config b = e->space().sample(rng);
    if (e->validity().valid(a) && e->validity().valid(b))
      edges.emplace_back(std::move(a), std::move(b));
  }

  // Warmup sizes the per-edge scratch (step ordering, config blocks) to
  // the longest edge in the set.
  collision::CollisionStats stats;
  for (const auto& [a, b] : edges) lp.plan(a, b, &stats);

  const std::uint64_t before = allocation_count();
  std::size_t accepted = 0;
  for (const auto& [a, b] : edges) accepted += lp.plan(a, b, &stats).success;
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u) << "accepted=" << accepted;
}

// --- golden roadmap hashes ------------------------------------------------
// Captured from the pre-overhaul kernels at fixed seeds. Any change to
// sampling, k-NN results (including tie order), interpolation bits, or edge
// accept/reject decisions shifts these hashes.

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t roadmap_hash(const planner::Roadmap& g) {
  std::uint64_t h = 14695981039346656037ull;
  const std::uint64_t nv = g.num_vertices();
  h = fnv1a(h, &nv, sizeof nv);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vert = g.vertex(v);
    h = fnv1a(h, &vert.region, sizeof vert.region);
    const std::uint64_t sz = vert.cfg.size();
    h = fnv1a(h, &sz, sizeof sz);
    for (std::size_t i = 0; i < vert.cfg.size(); ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &vert.cfg[i], sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  const std::uint64_t ne = g.num_edges();
  h = fnv1a(h, &ne, sizeof ne);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.edges_of(v)) {
      h = fnv1a(h, &e.to, sizeof e.to);
      std::uint64_t bits;
      std::memcpy(&bits, &e.prop.length, sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  return h;
}

TEST(GoldenRoadmaps, SequentialPrm) {
  const auto e = env::med_cube();
  planner::Prm prm(*e);
  prm.build(3000, 42);
  EXPECT_EQ(prm.roadmap().num_vertices(), 1378u);
  EXPECT_EQ(prm.roadmap().num_edges(), 1377u);
  EXPECT_EQ(roadmap_hash(prm.roadmap()), 0x2a003482c181ac78ull);
}

TEST(GoldenRoadmaps, SequentialRrt) {
  const auto e = env::med_cube();
  planner::Roadmap tree;
  Xoshiro256ss rootrng(5);
  cspace::Config root;
  do {
    root = e->space().sample(rootrng);
  } while (!e->validity().valid(root));
  planner::RrtBranch branch(*e, tree, root, 0, {});
  planner::PlannerStats stats;
  Xoshiro256ss rng(6);
  branch.grow([&](Xoshiro256ss& r) { return e->space().sample(r); }, rng,
              stats);
  EXPECT_EQ(tree.num_vertices(), 1000u);
  EXPECT_EQ(tree.num_edges(), 999u);
  EXPECT_EQ(roadmap_hash(tree), 0xa35ba8f2332d98adull);
}

TEST(GoldenRoadmaps, ParallelPrm) {
  const auto e = env::med_cube();
  const auto grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 64, false);
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 16384;
  cfg.workers = 4;
  cfg.seed = 7;
  const auto r = core::parallel_build_prm(*e, grid, cfg);
  EXPECT_EQ(r.roadmap.num_vertices(), 7556u);
  EXPECT_EQ(r.roadmap.num_edges(), 9099u);
  EXPECT_EQ(roadmap_hash(r.roadmap), 0x55df7ded490c23d4ull);
}

TEST(GoldenRoadmaps, ParallelRrt) {
  const auto e = env::mixed(0.30);
  const core::RadialRegions regions({50, 50, 50}, 45.0, 64, 4, 81, false);
  Xoshiro256ss rng(82);
  const auto root = e->space().at_position({50, 50, 50}, rng);
  core::ParallelRrtConfig cfg;
  cfg.workers = 4;
  cfg.seed = 83;
  const auto r = core::parallel_build_rrt(*e, regions, root, cfg);
  EXPECT_EQ(r.tree.num_vertices(), 7979u);
  EXPECT_EQ(r.tree.num_edges(), 7978u);
  EXPECT_EQ(roadmap_hash(r.tree), 0xdbc4008db5993100ull);
}

}  // namespace
}  // namespace pmpl
