// Integration tests: full pipelines end-to-end across modules — workload
// measurement + replay across strategies and processor counts, determinism
// guarantees, and solvable queries in every example environment.

#include <gtest/gtest.h>

#include <memory>

#include "core/parallel_build.hpp"
#include "core/prm_driver.hpp"
#include "core/rrt_driver.hpp"
#include "env/builders.hpp"
#include "model/model_env.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "util/rng.hpp"

namespace pmpl {
namespace {

using core::PrmRunConfig;
using core::PrmWorkloadConfig;
using core::RegionGrid;
using core::Strategy;

// --- the paper's headline behaviours, end to end ---------------------------

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = env::med_cube().release();
    grid_ = new RegionGrid(RegionGrid::make_auto(
        env_->space().position_bounds(), 1000, false));
    PrmWorkloadConfig cfg;
    cfg.total_attempts = 16384;
    cfg.seed = 42;
    workload_ = new core::Workload(
        core::build_prm_workload(*env_, *grid_, cfg));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete grid_;
    delete env_;
  }
  static env::Environment* env_;
  static RegionGrid* grid_;
  static core::Workload* workload_;
};

env::Environment* EndToEnd::env_ = nullptr;
RegionGrid* EndToEnd::grid_ = nullptr;
core::Workload* EndToEnd::workload_ = nullptr;

TEST_F(EndToEnd, StrategyOrderingUnderImbalance) {
  // In an imbalanced environment both LB families beat the baseline at
  // every processor count (paper Figs 5, 6, 8a).
  for (const std::uint32_t p : {16u, 64u, 192u}) {
    PrmRunConfig cfg;
    cfg.procs = p;
    cfg.strategy = Strategy::kNoLB;
    const double base = core::simulate_prm_run(*workload_, cfg).total_s;
    cfg.strategy = Strategy::kRepartition;
    const double repart = core::simulate_prm_run(*workload_, cfg).total_s;
    cfg.strategy = Strategy::kHybridWS;
    const double hybrid = core::simulate_prm_run(*workload_, cfg).total_s;
    EXPECT_LT(repart, base) << "p=" << p;
    EXPECT_LT(hybrid, base) << "p=" << p;
  }
}

TEST_F(EndToEnd, RebalancingBenefitShrinksWithScale) {
  // Strong scaling: fewer regions per processor leaves less room to move
  // load (paper Fig 5b discussion).
  PrmRunConfig cfg;
  cfg.strategy = Strategy::kRepartition;
  cfg.procs = 8;
  const auto low = core::simulate_prm_run(*workload_, cfg);
  cfg.procs = 250;  // 4 regions/proc
  const auto high = core::simulate_prm_run(*workload_, cfg);
  const double gain_low = low.cv_nodes_before - low.cv_nodes_after;
  const double gain_high = high.cv_nodes_before - high.cv_nodes_after;
  EXPECT_GT(gain_low, 0.0);
  // Relative CV reduction is weaker at scale.
  EXPECT_GT(gain_low / (low.cv_nodes_before + 1e-12),
            gain_high / (high.cv_nodes_before + 1e-12));
}

TEST_F(EndToEnd, HybridBeatsRand8ForPrm) {
  // Paper §IV-C2: HYBRID outperforms RAND-K for PRM (diffusive locality
  // helps region connection).
  PrmRunConfig cfg;
  cfg.procs = 64;
  cfg.strategy = Strategy::kHybridWS;
  const auto hybrid = core::simulate_prm_run(*workload_, cfg);
  cfg.strategy = Strategy::kRand8WS;
  const auto rand8 = core::simulate_prm_run(*workload_, cfg);
  // Ordering claim kept loose: hybrid must not be substantially worse.
  EXPECT_LT(hybrid.total_s, rand8.total_s * 1.10);
}

TEST_F(EndToEnd, StealingCollapsesAtScale) {
  // Fig 9: stolen-task counts drop as regions per processor shrink.
  PrmRunConfig cfg;
  cfg.strategy = Strategy::kHybridWS;
  cfg.procs = 10;
  const auto low = core::simulate_prm_run(*workload_, cfg);
  cfg.procs = 320;
  const auto high = core::simulate_prm_run(*workload_, cfg);
  // Absolute stolen work per processor collapses (Fig 9b): the pool of
  // stealable regions per processor shrinks with scale.
  auto stolen_per_proc = [](const core::PrmRunResult& r) {
    std::uint64_t total = 0;
    for (const auto s : r.ws.stolen_tasks) total += s;
    return static_cast<double>(total) /
           static_cast<double>(r.ws.stolen_tasks.size());
  };
  EXPECT_GT(stolen_per_proc(low), 4.0 * stolen_per_proc(high));
}

TEST(EndToEndFree, NoOverheadInBalancedEnvironment) {
  // Fig 8c / 10c: in the free environment every strategy is within a few
  // percent of the baseline — LB costs nothing when there is no imbalance.
  const auto e = env::free_env();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 512, false);
  PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 8192;
  wcfg.seed = 7;
  const auto w = core::build_prm_workload(*e, grid, wcfg);
  PrmRunConfig cfg;
  cfg.procs = 64;
  cfg.strategy = Strategy::kNoLB;
  const double base = core::simulate_prm_run(w, cfg).total_s;
  for (const Strategy s : {Strategy::kRepartition, Strategy::kHybridWS,
                           Strategy::kRand8WS}) {
    cfg.strategy = s;
    const double t = core::simulate_prm_run(w, cfg).total_s;
    EXPECT_LT(t, base * 1.10) << core::to_string(s);
    EXPECT_GT(t, base * 0.80) << core::to_string(s);
  }
}

// --- cross-strategy invariant: the planning result never changes -----------

TEST(Determinism, RoadmapIndependentOfScheduleAndProcs) {
  // The roadmap is a pure function of (env, grid, attempts, seed): replay
  // configuration must not matter, and two measurements agree exactly.
  const auto e = env::small_cube();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 216, false);
  PrmWorkloadConfig cfg;
  cfg.total_attempts = 4096;
  cfg.seed = 1234;
  const auto w1 = core::build_prm_workload(*e, grid, cfg);
  const auto w2 = core::build_prm_workload(*e, grid, cfg);
  ASSERT_EQ(w1.roadmap.num_vertices(), w2.roadmap.num_vertices());
  ASSERT_EQ(w1.roadmap.num_edges(), w2.roadmap.num_edges());
  for (graph::VertexId v = 0; v < w1.roadmap.num_vertices(); ++v)
    EXPECT_EQ(w1.roadmap.vertex(v).cfg, w2.roadmap.vertex(v).cfg);
}

TEST(Determinism, DifferentSeedsDifferentRoadmaps) {
  const auto e = env::small_cube();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 64, false);
  PrmWorkloadConfig a;
  a.total_attempts = 2048;
  a.seed = 1;
  PrmWorkloadConfig b = a;
  b.seed = 2;
  const auto wa = core::build_prm_workload(*e, grid, a);
  const auto wb = core::build_prm_workload(*e, grid, b);
  EXPECT_NE(wa.roadmap.num_vertices(), wb.roadmap.num_vertices());
}

// --- queries solved through the parallel-built roadmap ----------------------

TEST(Queries, ParallelRoadmapAnswersQueryInWarehouse) {
  const auto e = env::warehouse();
  const RegionGrid grid =
      RegionGrid::make_auto(e->space().position_bounds(), 125, false);
  core::ParallelPrmConfig cfg;
  cfg.total_attempts = 6000;
  cfg.workers = 4;
  cfg.prm.k_neighbors = 8;
  cfg.seed = 9;
  auto result = core::parallel_build_prm(*e, grid, cfg);
  Xoshiro256ss rng(10);
  const auto start = e->space().at_position({5, 5, 50}, rng);
  const auto goal = e->space().at_position({95, 95, 50}, rng);
  ASSERT_TRUE(e->validity().valid(start));
  ASSERT_TRUE(e->validity().valid(goal));
  const auto path = planner::query_roadmap(*e, result.roadmap, start, goal,
                                           8, 1.0);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(planner::path_valid(*e, *path, 1.0));
}

TEST(Queries, MazeSolvableWithSequentialPrm) {
  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 10;
  planner::Prm prm(*e, params);
  prm.build(4000, 11);
  // Start lower-left open cell, goal upper-right open cell.
  const cspace::Config start{6.0, 6.0, 0.0};
  const cspace::Config goal{95.0, 95.0, 0.0};
  ASSERT_TRUE(e->validity().valid(start));
  ASSERT_TRUE(e->validity().valid(goal));
  const auto path = prm.query(start, goal);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(planner::path_valid(*e, *path, 0.5));
}

// --- model-vs-experiment agreement (Fig 4 in miniature) ---------------------

TEST(ModelValidation, MeasuredSampleCvTracksAnalyticModel) {
  const auto e = env::model_2d(0.25);
  constexpr std::uint32_t kSide = 16;
  const model::ModelEnvironment analytic(0.25, kSide);
  const RegionGrid grid(e->space().position_bounds(), kSide, kSide, 1);
  PrmWorkloadConfig cfg;
  cfg.total_attempts = 1 << 15;
  cfg.seed = 3;
  cfg.prm.resolution = 0.05;
  const auto w = core::build_prm_workload(*e, grid, cfg);
  for (const std::uint32_t p : {4u, 16u}) {
    PrmRunConfig rcfg;
    rcfg.procs = p;
    rcfg.strategy = Strategy::kNoLB;
    const auto r = core::simulate_prm_run(w, rcfg);
    EXPECT_NEAR(r.cv_nodes_before, analytic.cv_naive(p), 0.08)
        << "p=" << p;
  }
}

}  // namespace
}  // namespace pmpl
