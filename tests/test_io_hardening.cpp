// Corruption-resistance tests for the persistence formats (roadmap v2,
// environment v2) and the strict command-line flag parser: malformed,
// truncated or bit-flipped input must yield a clean error code — never a
// crash, never a silently wrong object.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "env/builders.hpp"
#include "env/env_io.hpp"
#include "planner/prm.hpp"
#include "planner/roadmap_io.hpp"
#include "util/args.hpp"

namespace pmpl {
namespace {

std::string serialized_roadmap() {
  const auto e = env::small_cube();
  planner::Prm prm(*e);
  prm.build(300, 7);
  std::stringstream buffer;
  EXPECT_TRUE(planner::save_roadmap(prm.roadmap(), buffer));
  return buffer.str();
}

std::string serialized_env() {
  const auto e = env::med_cube();
  std::stringstream buffer;
  EXPECT_TRUE(env::save_environment(*e, buffer));
  return buffer.str();
}

// --- roadmap format version 2 ----------------------------------------------

TEST(RoadmapHardening, WritesVersionTwoWithChecksumFooter) {
  const std::string text = serialized_roadmap();
  EXPECT_EQ(text.rfind("pmpl-roadmap 2\n", 0), 0u);
  EXPECT_NE(text.find("\ncounts "), std::string::npos);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
}

TEST(RoadmapHardening, RoundTripThroughVersionTwo) {
  const std::string text = serialized_roadmap();
  std::stringstream in(text);
  IoStatus status = IoStatus::kMalformed;
  const auto loaded = planner::load_roadmap(in, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_GT(loaded->num_vertices(), 0u);
}

TEST(RoadmapHardening, TruncationAtEveryBoundaryIsRejected) {
  const std::string text = serialized_roadmap();
  ASSERT_GT(text.size(), 64u);
  for (std::size_t n = 0; n < text.size(); n += 64) {
    // A prefix missing only the final newline is complete data; every
    // shorter prefix must be rejected with a status.
    if (n == text.size() - 1) continue;
    std::stringstream in(text.substr(0, n));
    IoStatus status = IoStatus::kOk;
    const auto loaded = planner::load_roadmap(in, &status);
    EXPECT_FALSE(loaded.has_value()) << "prefix of " << n << " bytes loaded";
    EXPECT_NE(status, IoStatus::kOk) << "prefix of " << n << " bytes";
  }
}

TEST(RoadmapHardening, BitFlipsAreRejected) {
  const std::string text = serialized_roadmap();
  for (std::size_t pos = 0; pos + 1 < text.size(); pos += 7) {
    std::string mutated = text;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    std::stringstream in(mutated);
    IoStatus status = IoStatus::kOk;
    const auto loaded = planner::load_roadmap(in, &status);
    EXPECT_FALSE(loaded.has_value()) << "bit flip at byte " << pos;
    EXPECT_NE(status, IoStatus::kOk) << "bit flip at byte " << pos;
  }
}

TEST(RoadmapHardening, PreciseStatusCodes) {
  const auto status_of = [](const std::string& text) {
    std::stringstream in(text);
    IoStatus status = IoStatus::kOk;
    EXPECT_FALSE(planner::load_roadmap(in, &status).has_value());
    return status;
  };
  EXPECT_EQ(status_of("not-a-roadmap 2\n"), IoStatus::kBadMagic);
  EXPECT_EQ(status_of("pmpl-roadmap 99\n"), IoStatus::kBadVersion);
  EXPECT_EQ(status_of("pmpl-roadmap 2\ncounts 0 0\n"), IoStatus::kTruncated);
  EXPECT_EQ(status_of("pmpl-roadmap 2\ncounts 0 0\nchecksum zz\n"),
            IoStatus::kMalformed);
  EXPECT_EQ(status_of("pmpl-roadmap 2\ncounts 0 0\nchecksum 0 junk\n"),
            IoStatus::kMalformed);
  EXPECT_EQ(status_of("pmpl-roadmap 2\ncounts 0 0\nchecksum 0\n"),
            IoStatus::kChecksumMismatch);
  // Wrong declared counts with a correct checksum: count mismatch.
  {
    const std::string body = "counts 1 0\n";
    std::ostringstream os;
    os << "pmpl-roadmap 2\n" << body << "checksum " << std::hex
       << fnv1a64(body.data(), body.size()) << "\n";
    EXPECT_EQ(status_of(os.str()), IoStatus::kCountMismatch);
  }
  // Config dimension above the compile-time maximum: out of range.
  {
    const std::string body = "counts 1 0\nv 0 99 1.0\n";
    std::ostringstream os;
    os << "pmpl-roadmap 2\n" << body << "checksum " << std::hex
       << fnv1a64(body.data(), body.size()) << "\n";
    EXPECT_EQ(status_of(os.str()), IoStatus::kOutOfRange);
  }
}

TEST(RoadmapHardening, LegacyVersionOneStillLoads) {
  std::stringstream in(
      "pmpl-roadmap 1\n"
      "v 0 3 1.0 2.0 3.0\n"
      "v 1 3 4.0 5.0 6.0\n"
      "e 0 1 5.196\n");
  IoStatus status = IoStatus::kMalformed;
  const auto loaded = planner::load_roadmap(in, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ(loaded->num_vertices(), 2u);
  EXPECT_EQ(loaded->num_edges(), 1u);
}

TEST(RoadmapHardening, FileRoundTripIsAtomicAndClean) {
  const std::string path = ::testing::TempDir() + "roadmap_hardening.txt";
  const auto e = env::small_cube();
  planner::Prm prm(*e);
  prm.build(200, 9);
  ASSERT_TRUE(planner::save_roadmap_file(prm.roadmap(), path));
  {
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "temporary file left behind";
  }
  IoStatus status = IoStatus::kMalformed;
  const auto loaded = planner::load_roadmap_file(path, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ(loaded->num_vertices(), prm.roadmap().num_vertices());
  std::remove(path.c_str());

  IoStatus missing = IoStatus::kOk;
  EXPECT_FALSE(planner::load_roadmap_file(path, &missing).has_value());
  EXPECT_EQ(missing, IoStatus::kOpenFailed);
}

// --- environment format version 2 -------------------------------------------

TEST(EnvHardening, WritesVersionTwoWithChecksumFooter) {
  const std::string text = serialized_env();
  EXPECT_EQ(text.rfind("pmpl-env 2\n", 0), 0u);
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
}

TEST(EnvHardening, TruncationAtEveryBoundaryIsRejected) {
  const std::string text = serialized_env();
  ASSERT_GT(text.size(), 64u);
  for (std::size_t n = 0; n < text.size(); n += 64) {
    if (n == text.size() - 1) continue;
    std::stringstream in(text.substr(0, n));
    IoStatus status = IoStatus::kOk;
    const auto loaded = env::load_environment(in, &status);
    EXPECT_FALSE(loaded.has_value()) << "prefix of " << n << " bytes loaded";
    EXPECT_NE(status, IoStatus::kOk) << "prefix of " << n << " bytes";
  }
}

TEST(EnvHardening, BitFlipsAreRejected) {
  const std::string text = serialized_env();
  for (std::size_t pos = 0; pos + 1 < text.size(); pos += 5) {
    std::string mutated = text;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    std::stringstream in(mutated);
    IoStatus status = IoStatus::kOk;
    const auto loaded = env::load_environment(in, &status);
    EXPECT_FALSE(loaded.has_value()) << "bit flip at byte " << pos;
    EXPECT_NE(status, IoStatus::kOk) << "bit flip at byte " << pos;
  }
}

TEST(EnvHardening, StrictModeRejectsCommentsAndBlanks) {
  IoStatus status = IoStatus::kOk;
  {
    std::stringstream in("pmpl-env 2\n# comment\nspace se3 0 0 0 1 1 1\n");
    EXPECT_FALSE(env::load_environment(in, &status).has_value());
    EXPECT_EQ(status, IoStatus::kMalformed);
  }
  {
    std::stringstream in("pmpl-env 2\nspace se3 0 0 0 1 1 1\n");  // no footer
    EXPECT_FALSE(env::load_environment(in, &status).has_value());
    EXPECT_EQ(status, IoStatus::kTruncated);
  }
}

TEST(EnvHardening, LegacyVersionOneWithCommentsStillLoads) {
  std::stringstream in(
      "pmpl-env 1\n"
      "# hand-written scene, no checksum\n"
      "\n"
      "name legacy\n"
      "space se3 0 0 0 10 10 10\n"
      "robot sphere 0.5\n"
      "sphere 5 5 5 2\n");
  IoStatus status = IoStatus::kMalformed;
  const auto loaded = env::load_environment(in, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ((*loaded)->name(), "legacy");
  EXPECT_EQ((*loaded)->checker().obstacle_count(), 1u);
}

TEST(EnvHardening, FileRoundTripRestoresScene) {
  const std::string path = ::testing::TempDir() + "env_hardening.txt";
  const auto original = env::walls(false);
  ASSERT_TRUE(env::save_environment_file(*original, path));
  IoStatus status = IoStatus::kMalformed;
  const auto loaded = env::load_environment_file(path, &status);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(status, IoStatus::kOk);
  EXPECT_EQ((*loaded)->name(), original->name());
  EXPECT_EQ((*loaded)->checker().obstacle_count(),
            original->checker().obstacle_count());
  std::remove(path.c_str());
}

// --- strict flag parsing ----------------------------------------------------

ArgParser make_args(std::initializer_list<const char*> argv_tail) {
  static std::vector<const char*> argv;
  argv.clear();
  argv.push_back("prog");
  for (const char* a : argv_tail) argv.push_back(a);
  return ArgParser(static_cast<int>(argv.size()),
                   const_cast<char**>(argv.data()));
}

TEST(ArgsStrict, AcceptsWellFormedValues) {
  const auto args = make_args({"--n", "42", "--x=2.5", "--flag", "--on", "yes"});
  EXPECT_EQ(args.get_i64("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_f64("x", 0.0), 2.5);
  EXPECT_TRUE(args.get_bool("flag"));
  EXPECT_TRUE(args.get_bool("on"));
  EXPECT_EQ(args.get_i64("absent", 7), 7);
}

TEST(ArgsStrictDeathTest, RejectsTrailingGarbageInteger) {
  const auto args = make_args({"--n", "10x"});
  EXPECT_EXIT(args.get_i64("n", 0), ::testing::ExitedWithCode(2),
              "flag --n.*not a valid integer");
}

TEST(ArgsStrictDeathTest, RejectsTrailingGarbageFloat) {
  const auto args = make_args({"--x", "1.5.2"});
  EXPECT_EXIT(args.get_f64("x", 0.0), ::testing::ExitedWithCode(2),
              "flag --x.*not a valid number");
}

TEST(ArgsStrictDeathTest, RejectsOutOfRangeValue) {
  const auto args = make_args({"--procs", "0"});
  EXPECT_EXIT(args.get_i64("procs", 1, 1, 4096),
              ::testing::ExitedWithCode(2),
              "flag --procs.*outside permitted range");
}

TEST(ArgsStrictDeathTest, RejectsOverflowingInteger) {
  const auto args = make_args({"--n", "99999999999999999999999"});
  EXPECT_EXIT(args.get_i64("n", 0), ::testing::ExitedWithCode(2),
              "flag --n.*out of range");
}

TEST(ArgsStrictDeathTest, RejectsBadBoolean) {
  const auto args = make_args({"--resume", "maybe"});
  EXPECT_EXIT(args.get_bool("resume"), ::testing::ExitedWithCode(2),
              "flag --resume.*not a valid boolean");
}

TEST(ArgsStrictDeathTest, RejectsNanFloat) {
  const auto args = make_args({"--x", "nan"});
  EXPECT_EXIT(args.get_f64("x", 0.0, 0.0, 100.0),
              ::testing::ExitedWithCode(2), "flag --x");
}

}  // namespace
}  // namespace pmpl
