// Tests for loadbal/: metrics, partitioners (with property sweeps), steal
// policies, the DES work-stealing engine, bulk-synchronous timing, and the
// threaded executor.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <chrono>
#include <set>
#include <thread>

#include "loadbal/bulk_sync.hpp"
#include "loadbal/metrics.hpp"
#include "loadbal/partition.hpp"
#include "loadbal/steal_policy.hpp"
#include "loadbal/ws_engine.hpp"
#include "loadbal/ws_threaded.hpp"
#include "util/rng.hpp"

namespace pmpl::loadbal {
namespace {

// --- metrics -------------------------------------------------------------

TEST(Metrics, PerPartLoad) {
  const std::vector<double> w{1, 2, 3, 4};
  const Assignment a{0, 1, 0, 1};
  const auto load = per_part_load(w, a, 2);
  EXPECT_DOUBLE_EQ(load[0], 4.0);
  EXPECT_DOUBLE_EQ(load[1], 6.0);
}

TEST(Metrics, CvZeroWhenBalanced) {
  const std::vector<double> w{2, 2, 2, 2};
  const Assignment a{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(load_cv(w, a, 4), 0.0);
}

TEST(Metrics, MakespanIsMaxLoad) {
  const std::vector<double> w{5, 1, 1};
  const Assignment a{0, 1, 1};
  EXPECT_DOUBLE_EQ(makespan(w, a, 2), 5.0);
}

TEST(Metrics, EdgeCutCountsCrossEdges) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 1}, {1, 2}, {2, 3}};
  const Assignment a{0, 0, 1, 1};
  EXPECT_EQ(edge_cut(edges, a), 1u);
  const Assignment b{0, 1, 0, 1};
  EXPECT_EQ(edge_cut(edges, b), 3u);
}

TEST(Metrics, MigrationVolume) {
  const std::vector<std::uint64_t> bytes{10, 20, 30};
  const Assignment before{0, 0, 1};
  const Assignment after{0, 1, 1};
  const auto mv = migration_volume(bytes, before, after, 2);
  EXPECT_EQ(mv.total, 20u);
  EXPECT_EQ(mv.items_moved, 1u);
  EXPECT_EQ(mv.sent[0], 20u);
  EXPECT_EQ(mv.received[1], 20u);
}

// --- partitioners ------------------------------------------------------

TEST(Partition, BlockIsContiguousAndBalanced) {
  const auto a = partition_block(10, 3);
  EXPECT_EQ(a, (Assignment{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
}

TEST(Partition, BlockMorePartsThanItems) {
  const auto a = partition_block(2, 5);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
}

TEST(Partition, GreedyLptNearOptimal) {
  // Classic LPT instance: optimum makespan 11, LPT known to achieve it here.
  const std::vector<double> w{7, 6, 5, 4};
  PartitionProblem p{w, {}, {}, {}, 2};
  const auto a = partition_greedy_lpt(p);
  EXPECT_DOUBLE_EQ(makespan(w, a, 2), 11.0);
}

struct PartitionCase {
  std::size_t items;
  std::uint32_t parts;
  std::uint64_t seed;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {
 protected:
  void build(const PartitionCase& c) {
    Xoshiro256ss rng(c.seed);
    weights_.reserve(c.items);
    centroids_.reserve(c.items);
    for (std::size_t i = 0; i < c.items; ++i) {
      weights_.push_back(rng.uniform(0.1, 10.0));
      centroids_.push_back({rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)});
    }
    // Random sparse adjacency for the refinement test.
    for (std::size_t i = 0; i + 1 < c.items; ++i)
      edges_.emplace_back(static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(i + 1));
    problem_ = PartitionProblem{weights_, centroids_, edges_,
                                geo::Aabb{{0, 0, 0}, {100, 100, 100}},
                                c.parts};
  }

  void check_valid(const Assignment& a, std::uint32_t parts) {
    ASSERT_EQ(a.size(), weights_.size());
    for (const auto part : a) EXPECT_LT(part, parts);
    // Every part used when items >= parts.
    if (weights_.size() >= parts) {
      std::set<std::uint32_t> used(a.begin(), a.end());
      EXPECT_EQ(used.size(), parts);
    }
  }

  std::vector<double> weights_;
  std::vector<geo::Vec3> centroids_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  PartitionProblem problem_;
};

TEST_P(PartitionProperty, GreedyLptValidAndBetterThanBlock) {
  build(GetParam());
  const auto lpt = partition_greedy_lpt(problem_);
  check_valid(lpt, problem_.parts);
  const auto block = partition_block(weights_.size(), problem_.parts);
  EXPECT_LE(makespan(weights_, lpt, problem_.parts),
            makespan(weights_, block, problem_.parts) + 1e-9);
}

TEST_P(PartitionProperty, RcbValidAndReasonablyBalanced) {
  build(GetParam());
  const auto rcb = partition_rcb(problem_);
  check_valid(rcb, problem_.parts);
  const double total = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  const double ideal = total / problem_.parts;
  // Weighted RCB splits can be off by the largest item per level; allow a
  // generous factor but reject grossly imbalanced results.
  EXPECT_LE(makespan(weights_, rcb, problem_.parts), 2.5 * ideal + 10.0);
}

TEST_P(PartitionProperty, SfcValidAndCoversAllParts) {
  build(GetParam());
  const auto sfc = partition_sfc(problem_);
  check_valid(sfc, problem_.parts);
}

TEST_P(PartitionProperty, RefinementNeverIncreasesCut) {
  build(GetParam());
  auto a = partition_rcb(problem_);
  const auto cut_before = edge_cut(edges_, a);
  refine_edge_cut(problem_, a, 2, 1.20);
  EXPECT_LE(edge_cut(edges_, a), cut_before);
  check_valid(a, problem_.parts);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(PartitionCase{16, 2, 1}, PartitionCase{64, 8, 2},
                      PartitionCase{200, 16, 3}, PartitionCase{1000, 32, 4},
                      PartitionCase{333, 7, 5}, PartitionCase{50, 50, 6}));

TEST(Partition, RcbPreservesGeometry) {
  // Points in two well-separated clusters with equal weights: RCB must not
  // split a cluster across parts when 2 parts are requested.
  std::vector<double> w(40, 1.0);
  std::vector<geo::Vec3> c;
  for (int i = 0; i < 20; ++i) c.push_back({1.0 + 0.01 * i, 0, 0});
  for (int i = 0; i < 20; ++i) c.push_back({99.0 - 0.01 * i, 0, 0});
  PartitionProblem p{w, c, {}, geo::Aabb{{0, 0, 0}, {100, 1, 1}}, 2};
  const auto a = partition_rcb(p);
  for (int i = 1; i < 20; ++i) EXPECT_EQ(a[i], a[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(a[i], a[20]);
  EXPECT_NE(a[0], a[20]);
}

TEST(Partition, SfcKeepsSpatialNeighborsTogether) {
  // Grid of 8x8 unit-weight cells into 4 parts: each part's cells should
  // form a compact set — test proxy: edge cut below the naive scatter.
  std::vector<double> w(64, 1.0);
  std::vector<geo::Vec3> c;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y) {
      c.push_back({x + 0.5, y + 0.5, 0.0});
      const auto id = static_cast<std::uint32_t>(x * 8 + y);
      if (x + 1 < 8) edges.emplace_back(id, id + 8);
      if (y + 1 < 8) edges.emplace_back(id, id + 1);
    }
  PartitionProblem p{w, c, edges, geo::Aabb{{0, 0, 0}, {8, 8, 1}}, 4};
  const auto sfc = partition_sfc(p);
  // Scatter assignment: round-robin.
  Assignment scatter(64);
  for (std::size_t i = 0; i < 64; ++i)
    scatter[i] = static_cast<std::uint32_t>(i % 4);
  EXPECT_LT(edge_cut(edges, sfc), edge_cut(edges, scatter));
}

// --- steal policies -----------------------------------------------------

TEST(StealPolicy, RandKReturnsDistinctVictims) {
  StealPolicy policy(StealPolicyKind::kRandK, 64, 8);
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto v = policy.victims(5, 0, rng);
    EXPECT_EQ(v.size(), 8u);
    std::set<std::uint32_t> unique(v.begin(), v.end());
    EXPECT_EQ(unique.size(), 8u);
    EXPECT_EQ(unique.count(5), 0u);
    for (const auto x : v) EXPECT_LT(x, 64u);
  }
}

TEST(StealPolicy, RandKWithTinyPool) {
  StealPolicy policy(StealPolicyKind::kRandK, 2, 8);
  Xoshiro256ss rng(4);
  const auto v = policy.victims(0, 0, rng);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1u);
}

TEST(StealPolicy, DiffusiveReturnsMeshNeighbors) {
  StealPolicy policy(StealPolicyKind::kDiffusive, 16);
  Xoshiro256ss rng(5);
  const auto v = policy.victims(5, 0, rng);  // interior of 4x4
  EXPECT_EQ(v.size(), 4u);
}

TEST(StealPolicy, HybridEscalates) {
  StealPolicy policy(StealPolicyKind::kHybrid, 64, 8);
  EXPECT_EQ(policy.stages(), 2u);
  Xoshiro256ss rng(6);
  const auto stage0 = policy.victims(9, 0, rng);
  const auto mesh_neighbors = policy.mesh().neighbors(9);
  EXPECT_EQ(stage0, mesh_neighbors);
  const auto stage1 = policy.victims(9, 1, rng);
  EXPECT_EQ(stage1.size(), 8u);
}

TEST(StealPolicy, Names) {
  EXPECT_EQ(to_string(StealPolicyKind::kRandK), "rand-8");
  EXPECT_EQ(to_string(StealPolicyKind::kDiffusive), "diffusive");
  EXPECT_EQ(to_string(StealPolicyKind::kHybrid), "hybrid");
}

// --- DES work stealing -----------------------------------------------------

std::vector<WsItem> uniform_items(std::size_t n, double service,
                                  std::uint64_t bytes = 1000) {
  return std::vector<WsItem>(n, WsItem{service, bytes});
}

class WsEngineProperty
    : public ::testing::TestWithParam<std::tuple<StealPolicyKind, int>> {};

TEST_P(WsEngineProperty, AllWorkExecutedExactlyOnce) {
  const auto [policy, p] = GetParam();
  const std::size_t n = 8 * p;
  const auto items = uniform_items(n, 1e-3);
  // All work initially on location 0: maximal imbalance.
  const Assignment initial(n, 0);
  WsConfig cfg;
  cfg.policy = policy;
  const auto r = simulate_work_stealing(items, initial,
                                        static_cast<std::uint32_t>(p), cfg);
  std::uint64_t executed = 0;
  for (std::uint32_t loc = 0; loc < static_cast<std::uint32_t>(p); ++loc)
    executed += r.local_tasks[loc] + r.stolen_tasks[loc];
  EXPECT_EQ(executed, n);
  // Conservation: every item has an owner within range.
  for (const auto owner : r.final_owner)
    EXPECT_LT(owner, static_cast<std::uint32_t>(p));
  // Total busy time equals total service time.
  double busy = 0.0;
  for (const double b : r.busy_s) busy += b;
  EXPECT_NEAR(busy, 1e-3 * static_cast<double>(n), 1e-9);
}

TEST_P(WsEngineProperty, MakespanBeatsNoStealingUnderImbalance) {
  const auto [policy, p] = GetParam();
  if (p < 2) GTEST_SKIP();
  const std::size_t n = 16 * p;
  const auto items = uniform_items(n, 1e-3);
  const Assignment initial(n, 0);  // all on location 0
  WsConfig cfg;
  cfg.policy = policy;
  const auto r = simulate_work_stealing(items, initial,
                                        static_cast<std::uint32_t>(p), cfg);
  const double serial = 1e-3 * static_cast<double>(n);
  // A single hotspot is the worst case for randomized victim selection
  // (the paper's "low probability of finding work" point), so RAND-K only
  // has to improve; the locality-aware policies must improve materially.
  const double bound =
      policy == StealPolicyKind::kRandK ? 0.98 * serial : 0.9 * serial;
  EXPECT_LT(r.makespan_s, bound);
  EXPECT_GT(r.steal_grants, 0u);
}

TEST_P(WsEngineProperty, DeterministicPerSeed) {
  const auto [policy, p] = GetParam();
  const std::size_t n = 6 * p;
  const auto items = uniform_items(n, 5e-4);
  const auto initial = partition_block(n, static_cast<std::uint32_t>(p));
  WsConfig cfg;
  cfg.policy = policy;
  cfg.seed = 99;
  const auto a = simulate_work_stealing(items, initial,
                                        static_cast<std::uint32_t>(p), cfg);
  const auto b = simulate_work_stealing(items, initial,
                                        static_cast<std::uint32_t>(p), cfg);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.final_owner, b.final_owner);
  EXPECT_EQ(a.steal_requests, b.steal_requests);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, WsEngineProperty,
    ::testing::Combine(::testing::Values(StealPolicyKind::kRandK,
                                         StealPolicyKind::kDiffusive,
                                         StealPolicyKind::kHybrid),
                       ::testing::Values(1, 2, 8, 32)));

TEST(WsEngine, SingleLocationRunsSerially) {
  const auto items = uniform_items(10, 1e-3);
  const Assignment initial(10, 0);
  const auto r = simulate_work_stealing(items, initial, 1, {});
  // Serial work plus (tiny) termination-detection overhead.
  EXPECT_NEAR(r.makespan_s, 1e-2, 1e-4);
  EXPECT_EQ(r.steal_requests, 0u);
  EXPECT_EQ(r.local_tasks[0], 10u);
}

TEST(WsEngine, NoItems) {
  const auto r = simulate_work_stealing({}, {}, 4, {});
  EXPECT_GE(r.makespan_s, 0.0);
  EXPECT_EQ(r.stolen_fraction(), 0.0);
}

TEST(WsEngine, BalancedLoadStealsLittle) {
  // Perfectly balanced initial distribution: stealing shouldn't thrash.
  constexpr std::uint32_t kP = 8;
  const auto items = uniform_items(kP * 32, 1e-3);
  const auto initial = partition_block(items.size(), kP);
  const auto r = simulate_work_stealing(items, initial, kP, {});
  EXPECT_LT(r.stolen_fraction(), 0.2);
  // Makespan close to the per-location serial time.
  EXPECT_NEAR(r.makespan_s, 32e-3, 16e-3);
}

TEST(WsEngine, StolenTasksRecordedOnThief) {
  const auto items = uniform_items(64, 1e-3);
  const Assignment initial(64, 0);
  const auto r = simulate_work_stealing(items, initial, 4, {});
  // Location 0 executes mostly local work; others only stolen work.
  EXPECT_GT(r.local_tasks[0], 0u);
  for (std::uint32_t loc = 1; loc < 4; ++loc) {
    EXPECT_EQ(r.local_tasks[loc], 0u);
    EXPECT_GT(r.stolen_tasks[loc], 0u);
  }
  EXPECT_GT(r.stolen_fraction(), 0.3);
}

TEST(WsEngine, GiveUpBoundsProbing) {
  // One heavy item on loc 0 and nothing else: thieves can never steal the
  // executing item, must give up, and requests stay bounded.
  std::vector<WsItem> items{{5e-2, 100}};
  const Assignment initial{0};
  WsConfig cfg;
  cfg.give_up_after = 3;
  const auto r = simulate_work_stealing(items, initial, 16, cfg);
  EXPECT_EQ(r.steal_grants, 0u);
  EXPECT_LT(r.steal_requests, 2000u);
  EXPECT_NEAR(r.makespan_s, 5e-2, 5e-3);
}

TEST(WsEngine, HeavyTailHandled) {
  // One big item plus many small ones: makespan bounded below by the big
  // item, and stealing spreads the small ones.
  std::vector<WsItem> items(65, WsItem{1e-4, 100});
  items[0] = WsItem{2e-2, 100};
  const Assignment initial(65, 0);
  const auto r = simulate_work_stealing(items, initial, 8, {});
  EXPECT_GE(r.makespan_s, 2e-2);
  EXPECT_LT(r.makespan_s, 2e-2 + 8e-3);
}

TEST(WsEngine, TokenRoundsCounted) {
  const auto items = uniform_items(32, 1e-3);
  const Assignment initial(32, 0);
  const auto r = simulate_work_stealing(items, initial, 4, {});
  EXPECT_GE(r.token_rounds, 1u);
}

// --- bulk-synchronous model ---------------------------------------------

TEST(BulkSync, StaticPhaseIsMaxLoadPlusBarrier) {
  const std::vector<double> service{1.0, 2.0, 3.0};
  const Assignment a{0, 0, 1};
  const auto spec = runtime::ClusterSpec::hopper();
  const auto phase = static_phase(service, a, 2, spec);
  EXPECT_NEAR(phase.time_s, 3.0 + spec.remote_latency_s, 1e-6);
  EXPECT_DOUBLE_EQ(phase.busy_s[0], 3.0);
  EXPECT_DOUBLE_EQ(phase.busy_s[1], 3.0);
}

TEST(BulkSync, SingleProcessorNoBarrier) {
  const std::vector<double> service{1.0, 2.0};
  const Assignment a{0, 0};
  const auto phase = static_phase(service, a, 1, runtime::ClusterSpec::hopper());
  EXPECT_DOUBLE_EQ(phase.time_s, 3.0);
}

TEST(BulkSync, RedistributionCostsGrowWithMovedBytes) {
  const auto spec = runtime::ClusterSpec::hopper();
  const std::vector<std::uint64_t> small_bytes(100, 100);
  const std::vector<std::uint64_t> big_bytes(100, 1 << 20);
  Assignment before(100, 0);
  Assignment after(100);
  for (std::size_t i = 0; i < 100; ++i)
    after[i] = static_cast<std::uint32_t>(i % 4);
  const double t_small =
      redistribution_time(small_bytes, before, after, 4, spec);
  const double t_big = redistribution_time(big_bytes, before, after, 4, spec);
  EXPECT_GT(t_big, t_small);
}

TEST(BulkSync, NoMovementStillPaysCollectives) {
  const auto spec = runtime::ClusterSpec::hopper();
  const std::vector<std::uint64_t> bytes(10, 100);
  const Assignment same(10, 0);
  const double t = redistribution_time(bytes, same, same, 4, spec);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1e-3);
}

// --- threaded executor ------------------------------------------------------

TEST(WsThreaded, ExecutesEveryTaskOnce) {
  std::vector<std::atomic<int>> hits(200);
  std::vector<std::function<void()>> tasks;
  // Tasks take long enough that worker 0 cannot drain its queue before
  // the thieves wake up.
  for (int i = 0; i < 200; ++i)
    tasks.push_back([&hits, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++hits[i];
    });
  std::vector<std::uint32_t> initial(200, 0);  // all on worker 0
  const auto stats = run_work_stealing(tasks, initial, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::uint64_t total = 0, stolen = 0;
  for (const auto& s : stats) {
    total += s.executed_local + s.executed_stolen;
    stolen += s.executed_stolen;
  }
  EXPECT_EQ(total, 200u);
  EXPECT_GT(stolen, 0u);
}

TEST(WsThreaded, SingleWorker) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(50, [&] { ++count; });
  std::vector<std::uint32_t> initial(50, 0);
  const auto stats = run_work_stealing(tasks, initial, 1);
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(stats[0].executed_local, 50u);
  EXPECT_EQ(stats[0].executed_stolen, 0u);
}

TEST(WsThreaded, ReusedSchedulerIsolatesRunStats) {
  runtime::Scheduler sched(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(30, [&] { ++count; });
  std::vector<std::uint32_t> initial(30);
  for (std::size_t i = 0; i < initial.size(); ++i)
    initial[i] = static_cast<std::uint32_t>(i % 3);
  const auto first = run_on_scheduler(sched, tasks, initial);
  const auto second = run_on_scheduler(sched, tasks, initial);
  EXPECT_EQ(count.load(), 60);
  // Each run's stats cover exactly its own 30 tasks, not the union.
  for (const auto* stats : {&first, &second}) {
    std::uint64_t executed = 0;
    for (const auto& w : *stats)
      executed += w.executed_local + w.executed_stolen;
    EXPECT_EQ(executed, 30u);
  }
}

TEST(WsThreaded, SummaryReflectsStats) {
  std::vector<WorkerStats> stats(4);
  for (auto& w : stats) {
    w.executed_local = 10;
    w.steal_attempts = 8;
    w.steal_failures = 6;
    w.park_s = 0.25;
  }
  stats[1].executed_stolen = 10;  // 50 executed total, 10 stolen
  const auto s = summarize_workers(stats);
  EXPECT_EQ(s.total_executed, 50u);
  EXPECT_NEAR(s.stolen_fraction, 0.2, 1e-12);
  EXPECT_NEAR(s.steal_success_rate, 0.25, 1e-12);
  EXPECT_NEAR(s.total_park_s, 1.0, 1e-12);
  EXPECT_GT(s.executed_cv, 0.0);
}

TEST(WsThreaded, BalancedDistributionMostlyLocal) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks(64, [&] { ++count; });
  std::vector<std::uint32_t> initial(64);
  for (std::size_t i = 0; i < 64; ++i)
    initial[i] = static_cast<std::uint32_t>(i % 4);
  const auto stats = run_work_stealing(tasks, initial, 4);
  EXPECT_EQ(count.load(), 64);
  std::uint64_t local = 0, stolen = 0;
  for (const auto& s : stats) {
    local += s.executed_local;
    stolen += s.executed_stolen;
  }
  EXPECT_EQ(local + stolen, 64u);
}

}  // namespace
}  // namespace pmpl::loadbal
