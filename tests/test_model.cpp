// Tests for model/: the analytic §IV-B model environment.

#include <gtest/gtest.h>

#include <numeric>

#include "model/model_env.hpp"

namespace pmpl::model {
namespace {

TEST(ModelEnv, TotalFreeAreaMatchesBlockedFraction) {
  for (const double blocked : {0.0, 0.1, 0.25, 0.5}) {
    const ModelEnvironment m(blocked, 20);
    const double total = std::accumulate(m.vfree_weights().begin(),
                                         m.vfree_weights().end(), 0.0);
    EXPECT_NEAR(total, 1.0 - blocked, 1e-9) << "blocked=" << blocked;
  }
}

TEST(ModelEnv, CenterRegionsAreBlocked) {
  const ModelEnvironment m(0.25, 8);
  // Obstacle spans [0.25, 0.75]^2; cell (3,3) covers [0.375,0.5]^2 — fully
  // inside.
  EXPECT_NEAR(m.vfree(3 * 8 + 3), 0.0, 1e-12);
  // Corner cell fully free: area (1/8)^2.
  EXPECT_NEAR(m.vfree(0), 1.0 / 64.0, 1e-12);
}

TEST(ModelEnv, PartialOverlapCells) {
  const ModelEnvironment m(0.25, 4);
  // Cell (1,1) covers [0.25,0.5]^2, fully inside obstacle [0.25,0.75]^2.
  EXPECT_NEAR(m.vfree(1 * 4 + 1), 0.0, 1e-12);
  // Cell (0,1) covers x[0,0.25], y[0.25,0.5]: free.
  EXPECT_NEAR(m.vfree(0 * 4 + 1), 1.0 / 16.0, 1e-12);
}

TEST(ModelEnv, FreeEnvironmentHasZeroCv) {
  const ModelEnvironment m(0.0, 16);
  for (const std::uint32_t p : {2u, 4u, 8u}) {
    EXPECT_NEAR(m.cv_naive(p), 0.0, 1e-9) << p;
    EXPECT_NEAR(m.cv_best(p), 0.0, 1e-9) << p;
  }
}

TEST(ModelEnv, CenteredObstacleBalancedAtTwoProcs) {
  // Columns split symmetrically: the naive halves carry equal V_free.
  const ModelEnvironment m(0.25, 16);
  EXPECT_NEAR(m.cv_naive(2), 0.0, 1e-9);
}

TEST(ModelEnv, ImbalanceGrowsWithProcessorCount) {
  // Column partitions of the centered-square model are self-similar while
  // whole columns are assigned (CV constant); once parts are finer than a
  // column, blocked and free halves of a column separate and CV rises.
  const ModelEnvironment m(0.25, 32);
  EXPECT_NEAR(m.cv_naive(16), m.cv_naive(4), 1e-9);
  EXPECT_GT(m.cv_naive(64), m.cv_naive(16));
}

TEST(ModelEnv, BestPartitionNeverWorseThanNaive) {
  const ModelEnvironment m(0.25, 32);
  for (const std::uint32_t p : {2u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_LE(m.cv_best(p), m.cv_naive(p) + 1e-9) << "p=" << p;
    EXPECT_GE(m.max_load_improvement_pct(p), -1e-9) << "p=" << p;
    EXPECT_LE(m.max_load_improvement_pct(p), 100.0) << "p=" << p;
  }
}

TEST(ModelEnv, GreedyNearlyBalances) {
  const ModelEnvironment m(0.25, 32);
  // 1024 regions over 8 parts: greedy LPT gets within a few percent.
  EXPECT_LT(m.cv_best(8), 0.05);
}

TEST(ModelEnv, ImprovementShrinksAtHighCoreCounts) {
  // The paper's granularity effect: with fewer regions per processor the
  // best partition can do less (relative to its low-p improvement).
  const ModelEnvironment m(0.25, 16);  // 256 regions
  const double low_p = m.max_load_improvement_pct(8);
  const double high_p = m.max_load_improvement_pct(128);
  EXPECT_LT(high_p, low_p + 1e-9);
}

TEST(ModelEnv, LoadVectorsHaveRightShape) {
  const ModelEnvironment m(0.3, 10);
  const auto naive = m.naive_load(5);
  const auto best = m.best_load(5);
  EXPECT_EQ(naive.size(), 5u);
  EXPECT_EQ(best.size(), 5u);
  const double sum_naive = std::accumulate(naive.begin(), naive.end(), 0.0);
  const double sum_best = std::accumulate(best.begin(), best.end(), 0.0);
  EXPECT_NEAR(sum_naive, sum_best, 1e-9);
}

}  // namespace
}  // namespace pmpl::model
