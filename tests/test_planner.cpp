// Tests for planner/: k-NN structures, sequential PRM, sequential RRT,
// roadmap queries.

#include <gtest/gtest.h>

#include <algorithm>

#include "env/builders.hpp"
#include "graph/tree_utils.hpp"
#include "planner/knn.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "planner/rrt.hpp"
#include "util/rng.hpp"

namespace pmpl::planner {
namespace {

using cspace::Config;
using cspace::CSpace;

// --- k-NN --------------------------------------------------------------

class KnnProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(KnnProperty, KdTreeMatchesBruteForce) {
  const auto [n, seed] = GetParam();
  const CSpace space = CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  Xoshiro256ss rng(seed);
  KdTreeKnn tree(space);
  BruteForceKnn brute(space);
  for (int i = 0; i < n; ++i) {
    const Config c = space.sample(rng);
    tree.insert(static_cast<graph::VertexId>(i), c);
    brute.insert(static_cast<graph::VertexId>(i), c);
  }
  for (int q = 0; q < 25; ++q) {
    const Config query = space.sample(rng);
    for (const std::size_t k : {1u, 4u, 8u}) {
      auto a = tree.nearest(query, k);
      auto b = brute.nearest(query, k);
      ASSERT_EQ(a.size(), b.size());
      // Canonical order (distance, id) makes results bit-identical, not
      // merely close: both finders must agree exactly.
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id)
            << "n=" << n << " q=" << q << " k=" << k << " i=" << i;
        EXPECT_EQ(a[i].distance, b[i].distance)
            << "n=" << n << " q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, KnnProperty,
    ::testing::Combine(::testing::Values(1, 5, 33, 128, 500),
                       ::testing::Values(1u, 7u, 99u)));

TEST(Knn, EmptyStructureReturnsNothing) {
  const CSpace space = CSpace::se3({{0, 0, 0}, {10, 10, 10}});
  KdTreeKnn tree(space);
  Xoshiro256ss rng(1);
  EXPECT_TRUE(tree.nearest(space.sample(rng), 3).empty());
}

TEST(Knn, FewerPointsThanK) {
  const CSpace space = CSpace::se3({{0, 0, 0}, {10, 10, 10}});
  KdTreeKnn tree(space);
  Xoshiro256ss rng(2);
  tree.insert(0, space.sample(rng));
  tree.insert(1, space.sample(rng));
  EXPECT_EQ(tree.nearest(space.sample(rng), 10).size(), 2u);
}

TEST(Knn, ResultsSortedAscending) {
  const CSpace space = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  KdTreeKnn tree(space);
  Xoshiro256ss rng(3);
  for (int i = 0; i < 200; ++i)
    tree.insert(static_cast<graph::VertexId>(i), space.sample(rng));
  const auto result = tree.nearest(space.sample(rng), 10);
  EXPECT_TRUE(std::is_sorted(result.begin(), result.end(),
                             [](const Neighbor& a, const Neighbor& b) {
                               return a.distance < b.distance;
                             }));
}

TEST(Knn, ExactSelfQuery) {
  const CSpace space = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  KdTreeKnn tree(space);
  Xoshiro256ss rng(4);
  std::vector<Config> configs;
  for (int i = 0; i < 64; ++i) {
    configs.push_back(space.sample(rng));
    tree.insert(static_cast<graph::VertexId>(i), configs.back());
  }
  for (int i = 0; i < 64; ++i) {
    const auto nn = tree.nearest(configs[i], 1);
    ASSERT_EQ(nn.size(), 1u);
    EXPECT_EQ(nn[0].id, static_cast<graph::VertexId>(i));
    EXPECT_NEAR(nn[0].distance, 0.0, 1e-12);
  }
}

TEST(Knn, StatsCountCandidates) {
  const CSpace space = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  BruteForceKnn brute(space);
  Xoshiro256ss rng(5);
  for (int i = 0; i < 50; ++i)
    brute.insert(static_cast<graph::VertexId>(i), space.sample(rng));
  PlannerStats stats;
  brute.nearest(space.sample(rng), 3, &stats);
  EXPECT_EQ(stats.knn_queries, 1u);
  EXPECT_EQ(stats.knn_candidates, 50u);
}

TEST(Knn, FactorySelectsImplementation) {
  const CSpace space = CSpace::se3({{0, 0, 0}, {10, 10, 10}});
  EXPECT_NE(dynamic_cast<KdTreeKnn*>(make_neighbor_finder(space).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<BruteForceKnn*>(make_neighbor_finder(space, true).get()),
      nullptr);
}

// Randomized cross-check over every space kind with adversarial point sets:
// duplicates (exact distance ties), collinear points (symmetric ties),
// k > n, and the empty structure. Results must match bit-for-bit, including
// tie order — the canonical (distance, id) order totally orders candidates,
// so kd-tree traversal order must not leak into results.
TEST(Knn, RandomizedCrossCheckAllSpaces) {
  const CSpace spaces[] = {
      CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}, {-3, 3}, {-3, 3}}),
      CSpace::se2({{0, 0, 0}, {100, 100, 0}}),
      CSpace::se3({{0, 0, 0}, {100, 100, 100}}),
  };
  std::size_t total_queries = 0;
  for (const CSpace& space : spaces) {
    for (const std::size_t n : {0u, 3u, 17u, 150u, 400u}) {
      Xoshiro256ss rng(1000 + n);
      KdTreeKnn tree(space);
      BruteForceKnn brute(space);
      std::vector<Config> pts;
      for (std::size_t i = 0; i < n; ++i) {
        // ~1 in 6 points duplicates an earlier one: exact distance ties.
        const Config c = (!pts.empty() && rng.uniform_u64(6) == 0)
                             ? pts[rng.uniform_u64(pts.size())]
                             : space.sample(rng);
        pts.push_back(c);
        tree.insert(static_cast<graph::VertexId>(i), c);
        brute.insert(static_cast<graph::VertexId>(i), c);
      }
      for (int q = 0; q < 30; ++q) {
        // Half the queries sit exactly on stored points.
        const Config query = (!pts.empty() && q % 2 == 0)
                                 ? pts[rng.uniform_u64(pts.size())]
                                 : space.sample(rng);
        for (const std::size_t k :
             {std::size_t{1}, std::size_t{3}, std::size_t{8}, n + 5}) {
          const auto a = tree.nearest(query, k);
          const auto b = brute.nearest(query, k);
          ++total_queries;
          ASSERT_EQ(a.size(), b.size()) << "n=" << n << " k=" << k;
          for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].id, b[i].id)
                << "n=" << n << " q=" << q << " k=" << k << " i=" << i;
            ASSERT_EQ(a[i].distance, b[i].distance)
                << "n=" << n << " q=" << q << " k=" << k << " i=" << i;
          }
        }
      }
    }
  }
  EXPECT_GE(total_queries, 1000u);
}

TEST(Knn, CollinearPointsExactTieOrder) {
  // Points on a line; querying between two of them yields symmetric ties
  // at every radius. Ties must come back ordered by ascending id.
  const CSpace space = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  KdTreeKnn tree(space);
  BruteForceKnn brute(space);
  for (int i = 0; i < 12; ++i) {
    const Config c{static_cast<double>(i), 0.0, 0.0};
    tree.insert(static_cast<graph::VertexId>(i), c);
    brute.insert(static_cast<graph::VertexId>(i), c);
  }
  const Config query{5.5, 0.0, 0.0};
  const auto a = tree.nearest(query, 6);
  const auto b = brute.nearest(query, 6);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
  // Pairs (5,6), (4,7), (3,8) tie at 0.5, 1.5, 2.5; smaller id first.
  EXPECT_EQ(a[0].id, 5u);
  EXPECT_EQ(a[1].id, 6u);
  EXPECT_EQ(a[2].id, 4u);
  EXPECT_EQ(a[3].id, 7u);
  EXPECT_EQ(a[4].id, 3u);
  EXPECT_EQ(a[5].id, 8u);
}

TEST(Knn, DuplicatePositionsOrderedById) {
  const CSpace space = CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}});
  KdTreeKnn tree(space);
  const Config dup{10, 10, 10};
  // Insert the duplicate under deliberately unsorted ids.
  for (const graph::VertexId id : {7u, 2u, 9u, 4u}) tree.insert(id, dup);
  tree.insert(1, Config{90, 90, 90});
  const auto nn = tree.nearest(dup, 4);
  ASSERT_EQ(nn.size(), 4u);
  EXPECT_EQ(nn[0].id, 2u);
  EXPECT_EQ(nn[1].id, 4u);
  EXPECT_EQ(nn[2].id, 7u);
  EXPECT_EQ(nn[3].id, 9u);
  for (const auto& n : nn) EXPECT_EQ(n.distance, 0.0);
}

TEST(Knn, NearestBatchMatchesSingleQueries) {
  const CSpace space = CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  Xoshiro256ss rng(31);
  KdTreeKnn tree(space);
  for (int i = 0; i < 300; ++i)
    tree.insert(static_cast<graph::VertexId>(i), space.sample(rng));
  std::vector<Config> queries;
  for (int q = 0; q < 40; ++q) queries.push_back(space.sample(rng));

  PlannerStats batch_stats;
  KnnBatch batch;
  tree.nearest_batch(queries, 7, batch, &batch_stats);
  ASSERT_EQ(batch.query_count(), queries.size());

  PlannerStats single_stats;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto single = tree.nearest(queries[q], 7, &single_stats);
    const auto got = batch.of(q);
    ASSERT_EQ(got.size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(got[i].id, single[i].id);
      EXPECT_EQ(got[i].distance, single[i].distance);
    }
  }
  EXPECT_EQ(batch_stats.knn_queries, single_stats.knn_queries);
  EXPECT_EQ(batch_stats.knn_candidates, single_stats.knn_candidates);
}

TEST(Knn, LazyRebuildWhenBufferDominates) {
  const CSpace space = CSpace::se3({{0, 0, 0}, {100, 100, 100}});
  Xoshiro256ss rng(32);
  KdTreeKnn tree(space);
  // Inserting one-by-one, the insert-time policy (buffer >= 32 and
  // buffer*2 >= tree) rebuilds at 32, 64, 96, 144, 216, 324, 486 — after
  // 686 inserts the tree covers 486 points with 200 in the linear buffer.
  for (int i = 0; i < 686; ++i)
    tree.insert(static_cast<graph::VertexId>(i), space.sample(rng));
  EXPECT_EQ(tree.size(), 686u);
  EXPECT_EQ(tree.indexed_size(), 486u);
  // The first query notices the buffer dominating (200*4 >= 486) and folds
  // it into the tree instead of linearly scanning it on every query.
  tree.nearest(space.sample(rng), 4);
  EXPECT_EQ(tree.indexed_size(), 686u);
}

// --- PRM free functions ----------------------------------------------------

TEST(PrmPhases, SampleRegionKeepsValidOnly) {
  const auto e = env::med_cube();
  PlannerStats stats;
  Xoshiro256ss rng(11);
  // A region straddling the obstacle: some attempts must be rejected.
  const geo::Aabb box{{10, 40, 40}, {40, 60, 60}};
  const auto samples = planner::sample_region(*e, box, 300, rng, stats);
  EXPECT_EQ(stats.samples_attempted, 300u);
  EXPECT_EQ(stats.samples_valid, samples.size());
  EXPECT_LT(samples.size(), 300u);
  EXPECT_GT(samples.size(), 0u);
  for (const auto& c : samples) {
    EXPECT_TRUE(box.contains(e->space().position(c)));
    EXPECT_TRUE(e->validity().valid(c));
  }
}

TEST(PrmPhases, SampleRegionDeterministic) {
  const auto e = env::med_cube();
  const geo::Aabb box{{0, 0, 0}, {30, 30, 30}};
  PlannerStats s1, s2;
  Xoshiro256ss r1(9), r2(9);
  const auto a = planner::sample_region(*e, box, 100, r1, s1);
  const auto b = planner::sample_region(*e, box, 100, r2, s2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(PrmPhases, ConnectWithinAddsValidEdges) {
  const auto e = env::free_env();
  Roadmap g;
  PlannerStats stats;
  Xoshiro256ss rng(12);
  const geo::Aabb box{{0, 0, 0}, {40, 40, 40}};
  const auto samples = planner::sample_region(*e, box, 60, rng, stats);
  std::vector<graph::VertexId> ids;
  for (const auto& c : samples) ids.push_back(g.add_vertex({c, 0}));
  graph::UnionFind cc(g.num_vertices());
  PrmParams params;
  planner::connect_within(*e, g, ids, params, stats, &cc);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_GT(stats.lp_success, 0u);
  // In a free environment every local plan succeeds.
  EXPECT_EQ(stats.lp_success, stats.lp_attempts);
  // Component skipping keeps the roadmap a forest.
  EXPECT_LE(g.num_edges(), g.num_vertices() - 1);
}

TEST(PrmPhases, ConnectWithinWithoutSkipAddsRedundantEdges) {
  const auto e = env::free_env();
  Roadmap g;
  PlannerStats stats;
  Xoshiro256ss rng(13);
  const auto samples = planner::sample_region(
      *e, geo::Aabb{{0, 0, 0}, {40, 40, 40}}, 60, rng, stats);
  std::vector<graph::VertexId> ids;
  for (const auto& c : samples) ids.push_back(g.add_vertex({c, 0}));
  PrmParams params;
  params.skip_same_component = false;
  planner::connect_within(*e, g, ids, params, stats, nullptr);
  EXPECT_GT(g.num_edges(), g.num_vertices() - 1);
}

TEST(PrmPhases, ConnectBetweenBridgesRegions) {
  const auto e = env::free_env();
  Roadmap g;
  PlannerStats stats;
  Xoshiro256ss rng(14);
  std::vector<graph::VertexId> left, right;
  for (const auto& c : planner::sample_region(
           *e, geo::Aabb{{0, 0, 0}, {20, 40, 40}}, 40, rng, stats))
    left.push_back(g.add_vertex({c, 0}));
  for (const auto& c : planner::sample_region(
           *e, geo::Aabb{{20, 0, 0}, {40, 40, 40}}, 40, rng, stats))
    right.push_back(g.add_vertex({c, 1}));
  PrmParams params;
  const auto added = planner::connect_between(*e, g, left, right, params,
                                              stats, nullptr, 8);
  EXPECT_GT(added, 0u);
  EXPECT_EQ(g.num_edges(), added);
}

TEST(PrmPhases, ConnectBetweenEmptySidesNoOp) {
  const auto e = env::free_env();
  Roadmap g;
  PlannerStats stats;
  PrmParams params;
  EXPECT_EQ(planner::connect_between(*e, g, {}, {}, params, stats), 0u);
}

// --- Prm end to end -----------------------------------------------------

TEST(Prm, BuildsConnectedRoadmapInFreeSpace) {
  const auto e = env::free_env();
  Prm prm(*e);
  prm.build(400, 21);
  EXPECT_GT(prm.roadmap().num_vertices(), 300u);
  EXPECT_GT(prm.roadmap().num_edges(), 0u);
}

TEST(Prm, SolvesQueryAroundObstacle) {
  const auto e = env::med_cube();
  PrmParams params;
  params.k_neighbors = 8;
  Prm prm(*e, params);
  prm.build(1500, 22);
  Xoshiro256ss rng(23);
  const Config start = e->space().at_position({8, 8, 8}, rng);
  const Config goal = e->space().at_position({92, 92, 92}, rng);
  ASSERT_TRUE(e->validity().valid(start));
  ASSERT_TRUE(e->validity().valid(goal));
  const auto path = prm.query(start, goal);
  ASSERT_TRUE(path.has_value());
  EXPECT_GE(path->size(), 2u);
  EXPECT_EQ(path->front(), start);
  EXPECT_EQ(path->back(), goal);
  EXPECT_TRUE(path_valid(*e, *path, 1.0));
}

TEST(Prm, QueryFailsForInvalidEndpoints) {
  const auto e = env::med_cube();
  Prm prm(*e);
  prm.build(200, 24);
  Xoshiro256ss rng(25);
  const Config inside_obstacle = e->space().at_position({50, 50, 50}, rng);
  const Config valid_goal = e->space().at_position({5, 5, 5}, rng);
  EXPECT_FALSE(prm.query(inside_obstacle, valid_goal).has_value());
}

TEST(Prm, DeterministicAcrossRuns) {
  const auto e = env::small_cube();
  Prm a(*e), b(*e);
  a.build(300, 77);
  b.build(300, 77);
  EXPECT_EQ(a.roadmap().num_vertices(), b.roadmap().num_vertices());
  EXPECT_EQ(a.roadmap().num_edges(), b.roadmap().num_edges());
}

// --- path helpers -----------------------------------------------------

TEST(Query, PathLengthSumsSegments) {
  const auto e = env::free_env();
  const std::vector<Config> path{Config{0, 0, 0, 1, 0, 0, 0},
                                 Config{10, 0, 0, 1, 0, 0, 0},
                                 Config{10, 5, 0, 1, 0, 0, 0}};
  EXPECT_NEAR(path_length(*e, path), 15.0, 1e-9);
}

TEST(Query, PathValidDetectsCollision) {
  const auto e = env::med_cube();
  Xoshiro256ss rng(26);
  // Straight line through the central cube is invalid.
  const std::vector<Config> bad{e->space().at_position({5, 50, 50}, rng),
                                e->space().at_position({95, 50, 50}, rng)};
  EXPECT_FALSE(path_valid(*e, bad, 1.0));
  // A short edge in the free corner is valid.
  const std::vector<Config> good{e->space().at_position({5, 5, 5}, rng),
                                 e->space().at_position({10, 5, 5}, rng)};
  EXPECT_TRUE(path_valid(*e, good, 1.0));
}

// --- RRT ---------------------------------------------------------------

TEST(RrtBranch, GrowsTowardTarget) {
  const auto e = env::free_env();
  Roadmap tree;
  Xoshiro256ss rng(31);
  const Config root = e->space().at_position({50, 50, 50}, rng);
  RrtParams params;
  params.max_nodes = 50;
  params.max_iterations = 500;
  RrtBranch branch(*e, tree, root, 3, params);
  PlannerStats stats;
  const geo::Vec3 target{90, 50, 50};
  branch.grow([&](Xoshiro256ss& g) { return e->space().at_position(target, g); },
              rng, stats);
  EXPECT_EQ(branch.num_nodes(), 50u);
  EXPECT_EQ(tree.num_vertices(), 50u);
  EXPECT_TRUE(graph::is_forest(tree));
  // Growth must have advanced toward the target.
  double best = 1e9;
  for (const auto id : branch.node_ids()) {
    const double d = (e->space().position(tree.vertex(id).cfg) - target).norm();
    best = std::min(best, d);
  }
  EXPECT_LT(best, 20.0);
  // Region tag recorded on every vertex.
  for (const auto id : branch.node_ids())
    EXPECT_EQ(tree.vertex(id).region, 3u);
}

TEST(RrtBranch, RespectsStepSize) {
  const auto e = env::free_env();
  Roadmap tree;
  Xoshiro256ss rng(32);
  const Config root = e->space().at_position({50, 50, 50}, rng);
  RrtParams params;
  params.step = 3.0;
  params.max_nodes = 30;
  params.max_iterations = 300;
  RrtBranch branch(*e, tree, root, 0, params);
  PlannerStats stats;
  branch.grow([&](Xoshiro256ss& g) { return e->space().sample(g); }, rng,
              stats);
  for (graph::VertexId v = 0; v < tree.num_vertices(); ++v)
    for (const auto& he : tree.edges_of(v))
      EXPECT_LE(he.prop.length, params.step + 1e-9);
}

TEST(RrtBranch, BlockedRegionGrowsLess) {
  const auto e = env::mixed(0.60);
  RrtParams params;
  params.max_nodes = 60;
  params.max_iterations = 240;
  PlannerStats s_free, s_blocked;
  Xoshiro256ss rng(33);
  const Config root = e->space().at_position({50, 50, 50}, rng);
  // Free direction: -x (the mixed builder skews clutter toward +x).
  Roadmap t1;
  RrtBranch free_branch(*e, t1, root, 0, params);
  Xoshiro256ss r1(34);
  free_branch.grow(
      [&](Xoshiro256ss& g) {
        return e->space().at_position(
            {g.uniform(2, 40), g.uniform(20, 80), g.uniform(20, 80)}, g);
      },
      r1, s_free);
  Roadmap t2;
  RrtBranch blocked_branch(*e, t2, root, 0, params);
  Xoshiro256ss r2(34);
  blocked_branch.grow(
      [&](Xoshiro256ss& g) {
        return e->space().at_position(
            {g.uniform(60, 98), g.uniform(20, 80), g.uniform(20, 80)}, g);
      },
      r2, s_blocked);
  EXPECT_GE(free_branch.num_nodes(), blocked_branch.num_nodes());
  // Blocked growth has a lower extension success rate.
  const double free_rate =
      static_cast<double>(s_free.rrt_extends_success) /
      static_cast<double>(s_free.rrt_extends);
  const double blocked_rate =
      static_cast<double>(s_blocked.rrt_extends_success) /
      static_cast<double>(s_blocked.rrt_extends);
  EXPECT_GT(free_rate, blocked_rate);
}

TEST(Rrt, PlansThroughFreeSpace) {
  const auto e = env::free_env();
  RrtParams params;
  params.max_nodes = 2000;
  params.max_iterations = 8000;
  params.step = 8.0;
  Rrt rrt(*e, params);
  Xoshiro256ss rng(35);
  const Config start = e->space().at_position({10, 10, 10}, rng);
  const Config goal = e->space().at_position({90, 90, 90}, rng);
  const auto path = rrt.plan(start, goal, 36, 0.2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), start);
  EXPECT_EQ(path->back(), goal);
  EXPECT_TRUE(path_valid(*e, *path, 1.0));
}

TEST(Rrt, FailsGracefullyWhenGoalInvalid) {
  const auto e = env::med_cube();
  Rrt rrt(*e);
  Xoshiro256ss rng(37);
  const Config start = e->space().at_position({5, 5, 5}, rng);
  const Config goal = e->space().at_position({50, 50, 50}, rng);  // inside
  EXPECT_FALSE(rrt.plan(start, goal, 38).has_value());
}

}  // namespace
}  // namespace pmpl::planner
