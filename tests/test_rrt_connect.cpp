// RRT-Connect and wavefront-extension guarantees:
//  - the bidirectional planner returns valid paths with correct endpoints
//    and keeps the bridged forest a tree (V - 1 edges, regions 0/1);
//  - a single-target wave is bit-identical to the classic extend loop;
//  - fixed-seed trees are pinned by golden FNV-1a hashes (width 1 and a
//    wavefront width) and identical at every SIMD dispatch level on every
//    space kind.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "env/builders.hpp"
#include "env/environment.hpp"
#include "geometry/simd.hpp"
#include "planner/query.hpp"
#include "planner/rrt.hpp"
#include "planner/rrt_connect.hpp"
#include "util/rng.hpp"

namespace pmpl {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t roadmap_hash(const planner::Roadmap& g) {
  std::uint64_t h = 14695981039346656037ull;
  const std::uint64_t nv = g.num_vertices();
  h = fnv1a(h, &nv, sizeof nv);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto& vert = g.vertex(v);
    h = fnv1a(h, &vert.region, sizeof vert.region);
    const std::uint64_t sz = vert.cfg.size();
    h = fnv1a(h, &sz, sizeof sz);
    for (std::size_t i = 0; i < vert.cfg.size(); ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &vert.cfg[i], sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  const std::uint64_t ne = g.num_edges();
  h = fnv1a(h, &ne, sizeof ne);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.edges_of(v)) {
      h = fnv1a(h, &e.to, sizeof e.to);
      std::uint64_t bits;
      std::memcpy(&bits, &e.prop.length, sizeof bits);
      h = fnv1a(h, &bits, sizeof bits);
    }
  }
  return h;
}

struct SimdLevelGuard {
  geo::SimdLevel saved = geo::simd_level();
  ~SimdLevelGuard() { geo::set_simd_level(saved); }
};

std::vector<geo::SimdLevel> available_levels() {
  std::vector<geo::SimdLevel> out{geo::SimdLevel::kScalar};
  if (geo::detected_simd_level() >= geo::SimdLevel::kSse2)
    out.push_back(geo::SimdLevel::kSse2);
  if (geo::detected_simd_level() >= geo::SimdLevel::kAvx2)
    out.push_back(geo::SimdLevel::kAvx2);
  return out;
}

std::pair<cspace::Config, cspace::Config> corner_query(
    const env::Environment& e, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return {e.space().at_position({8, 8, 8}, rng),
          e.space().at_position({92, 92, 92}, rng)};
}

// --- planner behavior ------------------------------------------------------

TEST(RrtConnect, FindsValidPathAcrossTheObstacle) {
  const auto e = env::med_cube();
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    planner::RrtConnectParams params;
    params.batch_width = width;
    planner::RrtConnect rrtc(*e, params);
    const auto [start, goal] = corner_query(*e, 18);
    const auto path = rrtc.plan(start, goal, 42);
    ASSERT_TRUE(path.has_value()) << "width=" << width;
    ASSERT_GE(path->size(), 2u);
    EXPECT_EQ(path->front(), start) << "width=" << width;
    EXPECT_EQ(path->back(), goal) << "width=" << width;
    EXPECT_TRUE(planner::path_valid(*e, *path, 1.0)) << "width=" << width;
  }
}

TEST(RrtConnect, BridgedForestIsATreeWithBothRegions) {
  const auto e = env::med_cube();
  planner::RrtConnectParams params;
  params.batch_width = 4;
  planner::RrtConnect rrtc(*e, params);
  const auto [start, goal] = corner_query(*e, 19);
  const auto path = rrtc.plan(start, goal, 7);
  ASSERT_TRUE(path.has_value());

  const auto& g = rrtc.tree();
  // Two trees (V-2 edges) plus exactly one bridge.
  EXPECT_EQ(g.num_edges(), g.num_vertices() - 1);
  bool saw_region[2] = {false, false};
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(g.vertex(v).region, 2u);
    saw_region[g.vertex(v).region] = true;
  }
  EXPECT_TRUE(saw_region[0]);
  EXPECT_TRUE(saw_region[1]);
  // Roots: vertex 0 is the start tree's, vertex 1 the goal tree's.
  EXPECT_EQ(g.vertex(0).region, 0u);
  EXPECT_EQ(g.vertex(1).region, 1u);
}

TEST(RrtConnect, DeterministicForFixedSeedAndWidth) {
  const auto e = env::med_cube();
  for (const std::size_t width : {std::size_t{1}, std::size_t{8}}) {
    planner::RrtConnectParams params;
    params.batch_width = width;
    const auto [start, goal] = corner_query(*e, 20);
    planner::RrtConnect a(*e, params);
    planner::RrtConnect b(*e, params);
    (void)a.plan(start, goal, 5);
    (void)b.plan(start, goal, 5);
    EXPECT_EQ(roadmap_hash(a.tree()), roadmap_hash(b.tree()))
        << "width=" << width;
  }
}

// --- wavefront extension ----------------------------------------------------

TEST(RrtConnect, SingleTargetWaveMatchesClassicExtend) {
  const auto e = env::med_cube();
  planner::RrtParams params;
  Xoshiro256ss rng(21);
  const cspace::Config root = e->space().at_position({50, 20, 50}, rng);

  planner::Roadmap classic_tree, wave_tree;
  planner::PlannerStats classic_stats, wave_stats;
  planner::RrtBranch classic(*e, classic_tree, root, 0, params);
  planner::RrtBranch wave(*e, wave_tree, root, 0, params);

  for (int i = 0; i < 400; ++i) {
    const cspace::Config target = e->space().sample(rng);
    classic.extend(target, classic_stats);
    wave.extend_wave({&target, 1}, wave_stats);
  }
  EXPECT_EQ(roadmap_hash(classic_tree), roadmap_hash(wave_tree));
  EXPECT_EQ(wave_stats.rrt_extends, classic_stats.rrt_extends);
  EXPECT_EQ(wave_stats.rrt_extends_success,
            classic_stats.rrt_extends_success);
  EXPECT_EQ(wave_stats.lp_attempts, classic_stats.lp_attempts);
  EXPECT_EQ(wave_stats.lp_steps, classic_stats.lp_steps);
  EXPECT_EQ(wave_stats.cd.queries, classic_stats.cd.queries);
}

// --- SIMD level equality ----------------------------------------------------

TEST(RrtConnect, TreeHashIdenticalAtEverySimdLevelOnEverySpaceKind) {
  SimdLevelGuard guard;
  const geo::Aabb bounds{{0, 0, 0}, {100, 100, 100}};
  const std::vector<collision::ObstacleShape> obstacles{
      collision::ObstacleShape{geo::Aabb{{40, 40, 40}, {60, 60, 60}}}};
  const collision::RigidBody robot = collision::RigidBody::box({3, 2, 1});

  const auto check = [&](const env::Environment& e, const char* label) {
    std::uint64_t base = 0;
    for (std::size_t li = 0; li < available_levels().size(); ++li) {
      geo::set_simd_level(available_levels()[li]);
      planner::RrtConnectParams params;
      params.batch_width = 8;
      planner::RrtConnect rrtc(e, params);
      const auto [start, goal] = corner_query(e, 22);
      (void)rrtc.plan(start, goal, 9);
      const std::uint64_t h = roadmap_hash(rrtc.tree());
      if (li == 0)
        base = h;
      else
        EXPECT_EQ(h, base) << label << " level="
                           << to_string(available_levels()[li]);
    }
  };

  const env::Environment eucl(
      "eucl", cspace::CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}}),
      std::vector<collision::ObstacleShape>(obstacles), robot);
  const env::Environment se2("se2", cspace::CSpace::se2(bounds),
                             std::vector<collision::ObstacleShape>(obstacles),
                             robot);
  const env::Environment se3("se3", cspace::CSpace::se3(bounds),
                             std::vector<collision::ObstacleShape>(obstacles),
                             robot);
  check(eucl, "euclidean");
  check(se2, "se2");
  check(se3, "se3");
}

// --- golden tree hashes -----------------------------------------------------
// Captured from the first implementation; any change to steering, wave
// ordering, validity verdicts, or connect decisions shifts these.

TEST(GoldenRrtConnect, ClassicWidthOne) {
  const auto e = env::med_cube();
  planner::RrtConnectParams params;
  params.batch_width = 1;
  planner::RrtConnect rrtc(*e, params);
  const auto [start, goal] = corner_query(*e, 18);
  const auto path = rrtc.plan(start, goal, 42);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(roadmap_hash(rrtc.tree()), 0xa251cd6c847e364eull);
}

TEST(GoldenRrtConnect, WavefrontWidthEight) {
  const auto e = env::med_cube();
  planner::RrtConnectParams params;
  params.batch_width = 8;
  planner::RrtConnect rrtc(*e, params);
  const auto [start, goal] = corner_query(*e, 18);
  const auto path = rrtc.plan(start, goal, 42);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(roadmap_hash(rrtc.tree()), 0x77ba8cb782226c14ull);
}

}  // namespace
}  // namespace pmpl
