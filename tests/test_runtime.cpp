// Tests for runtime/: DES core, topology, communication model, Safra
// termination detection, Chase–Lev deque, work-stealing scheduler, thread
// pool facade, work-unit cost model. The ChaseLev/Scheduler stress tests
// double as the ThreadSanitizer targets (PMPL_SANITIZE=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/chase_lev_deque.hpp"
#include "runtime/des.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/termination.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/topology.hpp"
#include "runtime/work_units.hpp"

namespace pmpl::runtime {
namespace {

// --- DES ----------------------------------------------------------------

TEST(Des, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Des, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Des, CallbacksCanSchedule) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  const auto n = sim.run();
  EXPECT_EQ(n, 5u);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Des, NoTimeTravel) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { seen = sim.now(); });  // in the past: clamped
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Des, NegativeDelayClamped) {
  Simulator sim;
  sim.schedule_in(-3.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Des, EventCapStopsRunaway) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(1.0, forever); };
  sim.schedule_at(0.0, forever);
  const auto n = sim.run(1000);
  EXPECT_EQ(n, 1000u);
  EXPECT_TRUE(sim.hit_event_limit());  // capped with work still pending
  EXPECT_FALSE(sim.empty());
}

TEST(Des, DrainedRunClearsEventLimitFlag) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run(1000);
  EXPECT_FALSE(sim.hit_event_limit());
  EXPECT_TRUE(sim.empty());
}

// --- topology ------------------------------------------------------------

TEST(Topology, NodeMapping) {
  const ClusterSpec hopper = ClusterSpec::hopper();
  EXPECT_EQ(hopper.cores_per_node, 24u);
  EXPECT_EQ(hopper.node_of(0), 0u);
  EXPECT_EQ(hopper.node_of(23), 0u);
  EXPECT_EQ(hopper.node_of(24), 1u);
  EXPECT_TRUE(hopper.same_node(0, 23));
  EXPECT_FALSE(hopper.same_node(23, 24));
}

TEST(Topology, LatencyLocalVsRemote) {
  const ClusterSpec spec = ClusterSpec::opteron_cluster();
  EXPECT_LT(spec.latency(0, 1), spec.latency(0, 100));
  EXPECT_DOUBLE_EQ(spec.latency(0, 1), spec.local_latency_s);
  EXPECT_DOUBLE_EQ(spec.latency(0, 100), spec.remote_latency_s);
}

TEST(Topology, TransferTimeIncludesBandwidth) {
  const ClusterSpec spec = ClusterSpec::hopper();
  const double small = spec.transfer_time(0, 100, 0);
  const double big = spec.transfer_time(0, 100, 1 << 20);
  EXPECT_DOUBLE_EQ(small, spec.remote_latency_s);
  EXPECT_GT(big, small);
  EXPECT_NEAR(big - small, double(1 << 20) / spec.bandwidth_bps, 1e-12);
}

TEST(Mesh, NearSquareFactorization) {
  const ProcessMesh m(12);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.size(), 12u);
  const ProcessMesh s(16);
  EXPECT_EQ(s.cols(), 4u);
  EXPECT_EQ(s.rows(), 4u);
}

TEST(Mesh, InteriorHasFourNeighbors) {
  const ProcessMesh m(16);  // 4x4
  const auto n = m.neighbors(5);  // row 1, col 1
  EXPECT_EQ(n.size(), 4u);
}

TEST(Mesh, CornerHasTwoNeighbors) {
  const ProcessMesh m(16);
  EXPECT_EQ(m.neighbors(0).size(), 2u);
  EXPECT_EQ(m.neighbors(15).size(), 2u);
}

TEST(Mesh, NeighborsAreSymmetric) {
  const ProcessMesh m(13);  // ragged mesh
  for (std::uint32_t r = 0; r < m.size(); ++r) {
    for (const auto n : m.neighbors(r)) {
      const auto back = m.neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), r), back.end())
          << r << " <-> " << n;
    }
  }
}

TEST(Mesh, RaggedMeshExcludesMissingRanks) {
  const ProcessMesh m(5);  // 3x2ish: ranks 0..4 only
  for (std::uint32_t r = 0; r < m.size(); ++r)
    for (const auto n : m.neighbors(r)) EXPECT_LT(n, 5u);
}

TEST(Mesh, HopsIsManhattan) {
  const ProcessMesh m(16);  // 4x4
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);
  EXPECT_EQ(m.hops(0, 15), 6u);
  EXPECT_EQ(m.hops(5, 6), 1u);
}

TEST(Mesh, SingleProcessor) {
  const ProcessMesh m(1);
  EXPECT_TRUE(m.neighbors(0).empty());
}

// --- Safra termination ------------------------------------------------------

using Token = SafraTermination::Token;
using Action = SafraTermination::Action;

/// Run the token around the ring once, starting from initiate(); all ranks
/// idle. Returns the decision at rank 0.
SafraTermination::Decision run_round(SafraTermination& safra) {
  Token token = safra.initiate();
  std::uint32_t rank = safra.next_of(0);
  while (rank != 0) {
    const auto d = safra.on_token_at_idle(rank, token);
    EXPECT_EQ(d.action, Action::kForward);
    token = d.token;
    rank = d.next;
  }
  return safra.on_token_at_idle(0, token);
}

TEST(Safra, QuiescentRingTerminatesFirstRound) {
  SafraTermination safra(4);
  EXPECT_EQ(run_round(safra).action, Action::kTerminate);
}

TEST(Safra, InFlightMessageBlocksTermination) {
  SafraTermination safra(4);
  safra.on_send(1);  // message left rank 1, not yet received
  EXPECT_EQ(run_round(safra).action, Action::kForward);
  // After delivery: receiver black for one round, then terminate.
  safra.on_receive(3);
  EXPECT_EQ(run_round(safra).action, Action::kForward);  // black rank 3
  EXPECT_EQ(run_round(safra).action, Action::kTerminate);
}

TEST(Safra, BalancedTrafficNeedsWhiteRound) {
  SafraTermination safra(3);
  // 1 -> 2 delivered before any round: counts balanced but 2 is black.
  safra.on_send(1);
  safra.on_receive(2);
  EXPECT_EQ(run_round(safra).action, Action::kForward);
  EXPECT_EQ(run_round(safra).action, Action::kTerminate);
}

TEST(Safra, MessageIntoRankZero) {
  SafraTermination safra(3);
  // A message delivered to rank 0 *before* any round starts: the system is
  // already quiescent when rank 0 initiates (initiation whitens rank 0),
  // so the very first round may detect termination.
  safra.on_send(2);
  safra.on_receive(0);
  EXPECT_EQ(run_round(safra).action, Action::kTerminate);
}

TEST(Safra, ManyMessagesEventuallyTerminate) {
  SafraTermination safra(8);
  for (int i = 0; i < 100; ++i) {
    safra.on_send(static_cast<std::uint32_t>(i % 8));
    safra.on_receive(static_cast<std::uint32_t>((i + 3) % 8));
  }
  int rounds = 0;
  while (run_round(safra).action != Action::kTerminate) {
    ++rounds;
    ASSERT_LT(rounds, 5);
  }
}

// --- Safra ring repair -------------------------------------------------------

/// run_round that starts at the current leader (which may not be rank 0
/// after crashes) and skips spliced-out ranks.
SafraTermination::Decision run_round_from_leader(SafraTermination& safra) {
  const std::uint32_t leader = safra.leader();
  Token token = safra.initiate();
  std::uint32_t rank = safra.next_of(leader);
  while (rank != leader) {
    const auto d = safra.on_token_at_idle(rank, token);
    EXPECT_EQ(d.action, Action::kForward);
    token = d.token;
    rank = d.next;
  }
  return safra.on_token_at_idle(leader, token);
}

TEST(Safra, SingleRankRingTerminatesImmediately) {
  SafraTermination safra(1);
  EXPECT_EQ(safra.next_of(0), 0u);
  const auto d = safra.on_token_at_idle(0, safra.initiate());
  EXPECT_EQ(d.action, Action::kTerminate);
}

TEST(Safra, NextOfSkipsDeadRanks) {
  SafraTermination safra(4);
  safra.mark_dead(1);
  EXPECT_EQ(safra.next_of(0), 2u);
  safra.mark_dead(2);
  EXPECT_EQ(safra.next_of(0), 3u);
  EXPECT_EQ(safra.next_of(3), 0u);
  EXPECT_TRUE(safra.is_dead(1));
  EXPECT_FALSE(safra.is_dead(0));
}

TEST(Safra, LeaderMigratesToLowestAliveRank) {
  SafraTermination safra(4);
  EXPECT_EQ(safra.leader(), 0u);
  safra.mark_dead(0);
  EXPECT_EQ(safra.leader(), 1u);
  safra.mark_dead(1);
  EXPECT_EQ(safra.leader(), 2u);
  // The repaired two-rank ring still detects termination.
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kTerminate);
}

TEST(Safra, DeadRankBalanceFoldsIntoLeader) {
  SafraTermination safra(4);
  safra.on_send(2);   // message in flight from rank 2...
  safra.mark_dead(2); // ...when it dies: balance moves to the leader
  // The in-flight message is not yet delivered, so no round may terminate.
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kForward);
  safra.on_receive(3);  // delivery still cancels the folded count
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kForward);  // black
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kTerminate);
}

TEST(Safra, CancelledSendRestoresBalance) {
  SafraTermination safra(4);
  safra.on_send(2);
  safra.mark_dead(2);
  // The engine learns the message can never be delivered (its payload was
  // recovered elsewhere) and compensates at the leader.
  safra.on_send_cancelled(safra.leader());
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kTerminate);
}

TEST(Safra, TaintForcesExtraRound) {
  SafraTermination safra(3);
  safra.taint(1);  // rank 1 absorbed recovered regions
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kForward);
  EXPECT_EQ(run_round_from_leader(safra).action, Action::kTerminate);
}

// --- Chase–Lev deque --------------------------------------------------------

TEST(ChaseLev, OwnerPushPopIsLifo) {
  ChaseLevDeque<std::intptr_t> dq;
  for (std::intptr_t i = 1; i <= 5; ++i) dq.push(i);
  std::intptr_t v = 0;
  for (std::intptr_t i = 5; i >= 1; --i) {
    ASSERT_TRUE(dq.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(dq.pop(v));
}

TEST(ChaseLev, StealTakesOldestFirst) {
  ChaseLevDeque<std::intptr_t> dq;
  for (std::intptr_t i = 1; i <= 5; ++i) dq.push(i);
  std::intptr_t v = 0;
  for (std::intptr_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(dq.steal(v));
    EXPECT_EQ(v, i);  // FIFO from the top end
  }
  EXPECT_FALSE(dq.steal(v));
}

TEST(ChaseLev, GrowPathPreservesContents) {
  ChaseLevDeque<std::intptr_t> dq(8);  // forces several grows
  const std::intptr_t n = 1000;
  for (std::intptr_t i = 0; i < n; ++i) dq.push(i);
  EXPECT_EQ(dq.size_approx(), static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::intptr_t v = 0;
  while (dq.pop(v)) seen[static_cast<std::size_t>(v)] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ChaseLev, MixedPushPopInterleavesWithGrow) {
  ChaseLevDeque<std::intptr_t> dq(8);
  std::intptr_t next = 0, popped = 0;
  std::intptr_t v = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 37; ++i) dq.push(next++);
    for (int i = 0; i < 11; ++i)
      if (dq.pop(v)) ++popped;
  }
  while (dq.pop(v)) ++popped;
  EXPECT_EQ(popped, next);
}

// Owner pops while thieves steal: every element claimed exactly once.
// This is the primary TSan target for the deque protocol.
TEST(ChaseLev, OwnerAndThievesClaimEachItemOnce) {
  ChaseLevDeque<std::intptr_t> dq(8);
  constexpr std::intptr_t kItems = 20000;
  constexpr int kThieves = 3;
  std::vector<std::atomic<int>> claims(kItems);
  std::atomic<std::intptr_t> taken{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::intptr_t v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.steal(v)) {
          ++claims[static_cast<std::size_t>(v)];
          taken.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  // Owner: push in bursts, pop in between (grow path exercised under
  // concurrent steals).
  std::intptr_t pushed = 0, v = 0;
  while (pushed < kItems) {
    const std::intptr_t burst = std::min<std::intptr_t>(64, kItems - pushed);
    for (std::intptr_t i = 0; i < burst; ++i) dq.push(pushed++);
    for (int i = 0; i < 24; ++i) {
      if (dq.pop(v)) {
        ++claims[static_cast<std::size_t>(v)];
        taken.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (dq.pop(v)) {
    ++claims[static_cast<std::size_t>(v)];
    taken.fetch_add(1, std::memory_order_relaxed);
  }
  while (taken.load(std::memory_order_acquire) < kItems)
    std::this_thread::yield();
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (std::intptr_t i = 0; i < kItems; ++i)
    EXPECT_EQ(claims[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
}

// --- scheduler --------------------------------------------------------------

TEST(Scheduler, ExecutesAllExternalTasks) {
  Scheduler sched(4);
  TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) sched.submit([&] { ++count; }, &group);
  sched.wait(group);
  EXPECT_EQ(count.load(), 500);
}

TEST(Scheduler, WaitOnEmptyGroupReturns) {
  Scheduler sched(2);
  TaskGroup group;
  sched.wait(group);  // must not hang
  SUCCEED();
}

TEST(Scheduler, RecursiveSubmissionQuiesces) {
  Scheduler sched(4);
  TaskGroup group;
  std::atomic<int> count{0};
  std::function<void(int)> spawn = [&](int depth) {
    ++count;
    if (depth < 4) {
      for (int i = 0; i < 3; ++i)
        sched.submit([&, depth] { spawn(depth + 1); }, &group);
    }
  };
  sched.submit([&] { spawn(0); }, &group);
  sched.wait(group);
  // 1 + 3 + 9 + 27 + 81 = 121 nodes of the spawn tree.
  EXPECT_EQ(count.load(), 121);
}

TEST(Scheduler, NestedParallelForCompletes) {
  Scheduler sched(4);
  std::atomic<int> count{0};
  parallel_for(sched, 8, [&](std::size_t) {
    parallel_for(sched, 16, [&](std::size_t) { ++count; }, 1);
  }, 1);
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(Scheduler, SubmitToPinsWhenStealingDisabled) {
  SchedulerOptions options;
  options.steal = false;
  Scheduler sched(3, options);
  TaskGroup group;
  std::vector<std::atomic<int>> ran_on(3);
  for (int i = 0; i < 60; ++i) {
    const auto target = static_cast<std::uint32_t>(i % 3);
    sched.submit_to(target, [&, target] {
      EXPECT_EQ(sched.current_worker(), static_cast<int>(target));
      ++ran_on[target];
    }, &group);
  }
  sched.wait(group);
  for (int w = 0; w < 3; ++w) EXPECT_EQ(ran_on[w].load(), 20);
}

TEST(Scheduler, PerGroupWaitIgnoresOtherGroups) {
  Scheduler sched(4);
  TaskGroup slow_group, fast_group;
  std::atomic<bool> slow_done{false};
  std::atomic<bool> release_slow{false};
  sched.submit([&] {
    while (!release_slow.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    slow_done.store(true, std::memory_order_release);
  }, &slow_group);
  std::atomic<int> fast{0};
  for (int i = 0; i < 32; ++i) sched.submit([&] { ++fast; }, &fast_group);
  sched.wait(fast_group);  // must return while the slow task still runs
  EXPECT_EQ(fast.load(), 32);
  EXPECT_FALSE(slow_done.load());
  release_slow.store(true, std::memory_order_release);
  sched.wait(slow_group);
  EXPECT_TRUE(slow_done.load());
}

TEST(Scheduler, CountersAccountForEveryTask) {
  Scheduler sched(4);
  TaskGroup group;
  for (int i = 0; i < 300; ++i)
    sched.submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }, &group);
  sched.wait(group);
  const auto counters = sched.counters();
  ASSERT_EQ(counters.size(), 4u);
  std::uint64_t executed = 0;
  for (const auto& c : counters)
    executed += c.executed_local + c.executed_stolen;
  EXPECT_EQ(executed, 300u);
}

TEST(Scheduler, ParksWhenIdleAndWakesOnSubmit) {
  Scheduler sched(2);
  // Give the workers time to run through spin/yield backoff and park.
  // Parked time is only accounted on wake, so each attempt idles, then
  // submits a wave to wake everyone and re-reads the counters; the
  // widening idle window rides out a loaded `ctest -j` starving the
  // workers of the CPU they need to reach the parked state.
  double parked = 0.0;
  for (int attempt = 0; attempt < 6 && parked == 0.0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50 << attempt));
    TaskGroup group;
    std::atomic<int> count{0};
    for (int i = 0; i < 16; ++i) sched.submit([&] { ++count; }, &group);
    sched.wait(group);
    EXPECT_EQ(count.load(), 16);
    parked = 0.0;
    for (const auto& c : sched.counters()) parked += c.park_s;
  }
  EXPECT_GT(parked, 0.0);  // the idle period was parked, not spun
}

// Several waves of small tasks with random recursive spawns: the scheduler
// TSan target (steals, parking, group completion all under contention).
TEST(Scheduler, StressWavesOfRecursiveTasks) {
  Scheduler sched(4);
  for (int wave = 0; wave < 5; ++wave) {
    TaskGroup group;
    std::atomic<int> count{0};
    for (int i = 0; i < 400; ++i) {
      sched.submit([&, i] {
        ++count;
        if (i % 7 == 0)
          sched.submit([&] { ++count; }, &group);
      }, &group);
    }
    sched.wait(group);
    const int spawned = (400 + 6) / 7;
    EXPECT_EQ(count.load(), 400 + spawned);
  }
}

// --- scheduler error propagation & watchdog ---------------------------------

TEST(Scheduler, ThrowingTaskPropagatesAtParallelForJoin) {
  Scheduler sched(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(sched, 64, [&](std::size_t i) {
        ++ran;
        if (i == 17) throw std::runtime_error("task 17 failed");
      }, 1),
      std::runtime_error);
  // The wave still quiesced: the scheduler is fully usable afterwards.
  std::atomic<int> after{0};
  parallel_for(sched, 32, [&](std::size_t) { ++after; }, 1);
  EXPECT_EQ(after.load(), 32);
}

TEST(Scheduler, FirstExceptionWinsAndGroupIsReusable) {
  Scheduler sched(4);
  TaskGroup group;
  for (int i = 0; i < 16; ++i)
    sched.submit([] { throw std::runtime_error("boom"); }, &group);
  int caught = 0;
  try {
    sched.wait(group);
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);  // later exceptions of the wave are dropped
  EXPECT_FALSE(group.has_error());  // wait() consumed the latched error
  std::atomic<int> ok{0};
  sched.submit([&] { ++ok; }, &group);
  sched.wait(group);  // must not rethrow a stale error
  EXPECT_EQ(ok.load(), 1);
}

TEST(Scheduler, NestedThrowPropagatesThroughWorkerHelp) {
  Scheduler sched(4);
  // The outer body runs on a worker; its inner parallel_for joins via the
  // worker-help path, which must also rethrow.
  EXPECT_THROW(
      parallel_for(sched, 4, [&](std::size_t) {
        parallel_for(sched, 8, [&](std::size_t j) {
          if (j == 3) throw std::runtime_error("inner");
        }, 1);
      }, 1),
      std::runtime_error);
}

TEST(Scheduler, OrphanTaskErrorIsLatched) {
  Scheduler sched(2);
  sched.submit([] { throw std::runtime_error("orphan"); });  // no group
  std::exception_ptr e;
  for (int i = 0; i < 2000 && !e; ++i) {
    e = sched.take_orphan_error();
    if (!e) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(e);
  EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);
  EXPECT_FALSE(sched.take_orphan_error());  // slot cleared
}

TEST(Scheduler, WatchdogReportsStalledWait) {
  SchedulerOptions options;
  options.watchdog_s = 0.05;
  std::atomic<int> fired{0};
  std::atomic<bool> release{false};
  options.on_watchdog = [&](std::int64_t outstanding) {
    EXPECT_GE(outstanding, 1);
    ++fired;
    release.store(true, std::memory_order_release);
  };
  Scheduler sched(2, options);
  TaskGroup group;
  sched.submit([&] {
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }, &group);
  sched.wait(group);  // stalls until the watchdog releases the task
  EXPECT_GE(fired.load(), 1);
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  parallel_for(
      pool, 64,
      [&](std::size_t) {
        const int now = ++concurrent;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        --concurrent;
      },
      /*chunk=*/1);
  EXPECT_GT(peak.load(), 1);
}

// Two concurrent parallel_for calls on one pool: each waits on its own
// completion token, so the quick call must not block behind the slow one
// (the old wait_idle()-based version serialized them).
TEST(ThreadPool, ConcurrentParallelForsAreIndependent) {
  ThreadPool pool(4);
  std::atomic<bool> slow_finished{false};
  std::thread slow([&] {
    // Two long tasks: they occupy at most two of the four workers, so the
    // quick call below always has idle workers available.
    parallel_for(pool, 2, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }, /*chunk=*/1);
    slow_finished.store(true, std::memory_order_release);
  });
  // Let the slow tasks occupy workers first.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::atomic<int> quick{0};
  parallel_for(pool, 64, [&](std::size_t) { ++quick; }, /*chunk=*/1);
  EXPECT_EQ(quick.load(), 64);
  EXPECT_FALSE(slow_finished.load());  // quick call did not wait for slow
  slow.join();
  EXPECT_TRUE(slow_finished.load());
}

// --- work units --------------------------------------------------------------

TEST(WorkUnits, SecondsAreLinearInCounts) {
  const CostModel m;
  WorkCounts w;
  w.cd_queries = 10;
  const double base = m.seconds(w);
  w.cd_queries = 20;
  EXPECT_NEAR(m.seconds(w), 2.0 * base, 1e-15);
}

TEST(WorkUnits, ScaleMultipliesUniformly) {
  CostModel m;
  WorkCounts w;
  w.narrow_tests = 100;
  w.knn_candidates = 50;
  const double base = m.seconds(w);
  m.scale = 10.0;
  EXPECT_NEAR(m.seconds(w), 10.0 * base, 1e-18);
}

TEST(WorkUnits, PaperFidelityScalesUp) {
  const CostModel paper = CostModel::paper_fidelity();
  EXPECT_GT(paper.scale, 1.0);
}

TEST(WorkUnits, CountsAccumulate) {
  WorkCounts a, b;
  a.cd_queries = 3;
  b.cd_queries = 4;
  b.rrt_extends = 2;
  a += b;
  EXPECT_EQ(a.cd_queries, 7u);
  EXPECT_EQ(a.rrt_extends, 2u);
}

}  // namespace
}  // namespace pmpl::runtime
