// Service-layer guarantees:
//  - SnapshotPool is a correct epoch/RCU pool: readers pinned on epoch N
//    stay valid while N+1..N+3 publish, retired snapshots are reclaimed
//    exactly when their last reader drops (verified through an
//    allocation-counting harness plus RoadmapSnapshot::live_count), and the
//    acquire/publish race is safe under real thread churn;
//  - the QueryEngine is deterministic: the same snapshot + request sequence
//    produce bit-identical paths for any worker count, and engine answers
//    are bit-identical to the sequential query_roadmap baseline;
//  - deadlines cancel within one pipeline granule and mark the result
//    degraded instead of wedging a worker;
//  - the read-only overlay query path never mutates the roadmap;
//  - engine metrics publish under deterministic keys.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "planner/query.hpp"
#include "service/query_engine.hpp"
#include "service/snapshot.hpp"
#include "util/rng.hpp"

// --- allocation counting hook ---------------------------------------------
// Local to this binary: pairs every successful global allocation with its
// deallocation so tests can assert that retiring an epoch actually frees
// memory (not merely that the RoadmapSnapshot destructor ran).

namespace {
std::atomic<std::int64_t> g_outstanding{0};
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size ? size : 1)) {
    g_outstanding.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = std::malloc(size ? size : 1)) {
    g_outstanding.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept {
  if (p) g_outstanding.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  if (p) g_outstanding.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  if (p) g_outstanding.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  if (p) g_outstanding.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}

namespace pmpl {
namespace {

std::int64_t outstanding_allocations() {
  return g_outstanding.load(std::memory_order_relaxed);
}

planner::Roadmap small_maze_roadmap(std::size_t attempts = 600,
                                    std::uint64_t seed = 7) {
  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 6;
  params.resolution = 0.5;
  planner::Prm prm(*e, params);
  prm.build(attempts, seed);
  return prm.roadmap();
}

// --- snapshot pool lifecycle ----------------------------------------------

TEST(SnapshotPool, EmptyPoolYieldsNoSnapshot) {
  service::SnapshotPool pool;
  EXPECT_FALSE(pool.acquire());
  EXPECT_EQ(pool.current_epoch(), 0u);
  EXPECT_EQ(pool.live_slots(), 0u);
}

TEST(SnapshotPool, PublishThenAcquirePinsCurrentEpoch) {
  const auto base = small_maze_roadmap();
  service::SnapshotPool pool;
  EXPECT_EQ(pool.publish(planner::Roadmap(base)), 1u);
  auto ref = pool.acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->epoch, 1u);
  EXPECT_EQ(ref->roadmap.num_vertices(), base.num_vertices());
  EXPECT_EQ(ref->roadmap.num_edges(), base.num_edges());
  EXPECT_EQ(pool.current_readers(), 1u);
  ref.release();
  EXPECT_EQ(pool.current_readers(), 0u);
}

TEST(SnapshotPool, PinnedReaderSurvivesThreeNewerEpochs) {
  const auto base = small_maze_roadmap();
  service::SnapshotPool pool;
  pool.publish(planner::Roadmap(base));
  auto pinned = pool.acquire();
  ASSERT_TRUE(pinned);
  ASSERT_EQ(pinned->epoch, 1u);

  // Publish epochs 2..4 while epoch 1 stays pinned. The pinned snapshot
  // must remain byte-for-byte readable throughout.
  for (std::uint64_t ep = 2; ep <= 4; ++ep) {
    EXPECT_EQ(pool.publish(planner::Roadmap(base)), ep);
    EXPECT_EQ(pool.current_epoch(), ep);
    EXPECT_EQ(pinned->epoch, 1u);
    EXPECT_EQ(pinned->roadmap.num_vertices(), base.num_vertices());
    EXPECT_EQ(pinned->roadmap.num_edges(), base.num_edges());
  }

  // Unpinned intermediate epochs 2 and 3 were retired and reclaimed as
  // epoch 3 and 4 published; alive now: pinned epoch 1 + current epoch 4.
  EXPECT_EQ(service::RoadmapSnapshot::live_count(), 2u);
  EXPECT_EQ(pool.reclaimed_total(), 2u);
  EXPECT_EQ(pool.live_slots(), 2u);

  // Dropping the last pin on the retired epoch 1 reclaims it immediately.
  pinned.release();
  EXPECT_EQ(service::RoadmapSnapshot::live_count(), 1u);
  EXPECT_EQ(pool.reclaimed_total(), 3u);
  EXPECT_EQ(pool.live_slots(), 1u);
}

TEST(SnapshotPool, RetiredSnapshotMemoryIsActuallyFreed) {
  const auto base = small_maze_roadmap();
  service::SnapshotPool pool;
  pool.publish(planner::Roadmap(base));

  const std::int64_t before = outstanding_allocations();
  {
    auto pinned = pool.acquire();
    ASSERT_TRUE(pinned);
    pool.publish(planner::Roadmap(base));  // retires epoch 1, still pinned
    EXPECT_GT(outstanding_allocations(), before);
  }  // last reader drops -> epoch 1 reclaimed here

  // Epoch 2's snapshot is the only growth left; freeing it must return the
  // outstanding-allocation count to the baseline.
  pool.publish(planner::Roadmap());  // retires + reclaims epoch 2
  auto cur = pool.acquire();
  ASSERT_TRUE(cur);
  EXPECT_EQ(cur->epoch, 3u);
  EXPECT_EQ(cur->roadmap.num_vertices(), 0u);
  cur.release();
  EXPECT_EQ(service::RoadmapSnapshot::live_count(), 1u);
  // Allow the empty epoch-3 snapshot's own handful of allocations.
  EXPECT_LT(outstanding_allocations() - before, 64);
}

TEST(SnapshotPool, SevenOldEpochsCanStayPinnedAtOnce) {
  // kSlots = 8: seven retired epochs pinned by laggard readers plus the
  // current epoch occupy the whole pool; every pinned epoch stays intact.
  service::SnapshotPool pool;
  std::vector<service::SnapshotRef> pins;
  for (std::uint64_t ep = 1; ep <= service::SnapshotPool::kSlots - 1; ++ep) {
    planner::Roadmap g;
    const auto e = env::maze_2d();
    Xoshiro256ss rng(ep);
    for (std::uint64_t v = 0; v < ep; ++v)
      g.add_vertex({e->space().sample(rng), 0});
    EXPECT_EQ(pool.publish(std::move(g)), ep);
    pins.push_back(pool.acquire());
    ASSERT_TRUE(pins.back());
  }
  EXPECT_EQ(pool.publish(planner::Roadmap()), 8u);
  EXPECT_EQ(pool.live_slots(), service::SnapshotPool::kSlots);
  for (std::size_t i = 0; i < pins.size(); ++i) {
    EXPECT_EQ(pins[i]->epoch, i + 1);
    EXPECT_EQ(pins[i]->roadmap.num_vertices(), i + 1);
  }
  pins.clear();
  EXPECT_EQ(pool.live_slots(), 1u);  // only the current epoch remains
}

TEST(SnapshotPool, DestructorReclaimsEverything) {
  const std::uint64_t live_before = service::RoadmapSnapshot::live_count();
  {
    service::SnapshotPool pool;
    pool.publish(small_maze_roadmap());
    pool.publish(small_maze_roadmap());
  }
  EXPECT_EQ(service::RoadmapSnapshot::live_count(), live_before);
}

TEST(SnapshotPool, AcquireReleaseRaceWithPublishChurn) {
  // The TSan target for the reader protocol: hammer acquire/read/release
  // from several threads while a publisher keeps swapping epochs. Readers
  // must never observe a torn snapshot (epoch and vertex count are
  // published together and checked for consistency).
  const auto base = small_maze_roadmap(200, 3);
  service::SnapshotPool pool;
  pool.publish(planner::Roadmap(base));

  constexpr int kReaders = 4;
  constexpr int kPublishes = 40;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto ref = pool.acquire();
        if (!ref) continue;
        // Every published roadmap has exactly base vertices + epoch extras.
        const std::uint64_t extra =
            ref->roadmap.num_vertices() - base.num_vertices();
        if (extra != (ref->epoch - 1) % 5) torn.store(true);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto e = env::maze_2d();
  Xoshiro256ss rng(11);
  for (int p = 0; p < kPublishes; ++p) {
    planner::Roadmap g(base);
    for (std::uint64_t v = 0; v < static_cast<std::uint64_t>((p + 1) % 5);
         ++v)
      g.add_vertex({e->space().sample(rng), 0});
    pool.publish(std::move(g));
  }
  // Let readers overlap the final epoch before stopping.
  while (reads.load(std::memory_order_relaxed) < 100) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GE(reads.load(), 100u);
  EXPECT_EQ(pool.published_total(), static_cast<std::uint64_t>(kPublishes) + 1);
  // With no readers left, everything but the current epoch is reclaimed.
  EXPECT_EQ(pool.live_slots(), 1u);
  EXPECT_EQ(pool.reclaimed_total(), static_cast<std::uint64_t>(kPublishes));
}

TEST(SnapshotPool, DensifyAndPublishIsDeterministic) {
  const auto e = env::maze_2d();
  planner::PrmParams params;
  params.k_neighbors = 6;
  params.resolution = 0.5;

  service::SnapshotPool a, b;
  a.publish(small_maze_roadmap());
  b.publish(small_maze_roadmap());
  planner::PlannerStats sa, sb;
  EXPECT_EQ(service::densify_and_publish(a, *e, params, 300, 21, &sa), 2u);
  EXPECT_EQ(service::densify_and_publish(b, *e, params, 300, 21, &sb), 2u);

  auto ra = a.acquire();
  auto rb = b.acquire();
  ASSERT_TRUE(ra);
  ASSERT_TRUE(rb);
  EXPECT_GT(ra->roadmap.num_vertices(), small_maze_roadmap().num_vertices());
  EXPECT_EQ(ra->roadmap.num_vertices(), rb->roadmap.num_vertices());
  EXPECT_EQ(ra->roadmap.num_edges(), rb->roadmap.num_edges());
  EXPECT_EQ(sa.cd.queries, sb.cd.queries);
}

// --- query engine ----------------------------------------------------------

struct ServiceFixture : ::testing::Test {
  void SetUp() override {
    e = env::maze_2d();
    params.k_neighbors = 8;
    params.resolution = 0.5;
    planner::Prm prm(*e, params);
    prm.build(2500, 17);
    roadmap = prm.roadmap();
    pool.publish(planner::Roadmap(roadmap));
  }

  std::vector<service::QueryRequest> make_requests(std::size_t n,
                                                   std::uint64_t seed) const {
    Xoshiro256ss rng(seed);
    std::vector<service::QueryRequest> reqs;
    while (reqs.size() < n) {
      service::QueryRequest q;
      q.start = e->space().sample(rng);
      q.goal = e->space().sample(rng);
      if (!e->validity().valid(q.start) || !e->validity().valid(q.goal))
        continue;
      q.k = params.k_neighbors;
      reqs.push_back(std::move(q));
    }
    return reqs;
  }

  std::unique_ptr<env::Environment> e;
  planner::PrmParams params;
  planner::Roadmap roadmap;
  service::SnapshotPool pool;
};

bool same_path(const std::vector<cspace::Config>& a,
               const std::vector<cspace::Config>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t d = 0; d < a[i].size(); ++d)
      if (a[i][d] != b[i][d]) return false;  // bit-identical, not approx
  }
  return true;
}

TEST_F(ServiceFixture, EngineAnswersMatchSequentialQueryRoadmapBitwise) {
  service::QueryEngineConfig cfg;
  cfg.workers = 2;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  const auto reqs = make_requests(12, 99);
  const auto results = engine.run_batch(reqs);
  ASSERT_EQ(results.size(), reqs.size());

  std::size_t solved = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto baseline =
        planner::query_roadmap(*e, roadmap, reqs[i].start, reqs[i].goal,
                               reqs[i].k, params.resolution);
    if (results[i].status == service::QueryStatus::kSolved) {
      ++solved;
      ASSERT_TRUE(baseline.has_value()) << "query " << i;
      EXPECT_TRUE(same_path(results[i].path, *baseline)) << "query " << i;
      EXPECT_FALSE(results[i].degraded);
      EXPECT_EQ(results[i].epoch, 1u);
      EXPECT_GT(results[i].length, 0.0);
    } else {
      EXPECT_EQ(results[i].status, service::QueryStatus::kUnreachable);
      EXPECT_FALSE(baseline.has_value()) << "query " << i;
    }
  }
  EXPECT_GE(solved, reqs.size() / 2) << "maze roadmap too sparse for test";
}

TEST_F(ServiceFixture, BatchResultsAreBitIdenticalAcrossWorkerCounts) {
  const auto reqs = make_requests(10, 123);
  std::vector<std::vector<service::QueryResult>> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    service::QueryEngineConfig cfg;
    cfg.workers = workers;
    cfg.resolution = params.resolution;
    runtime::MetricsRegistry metrics;
    cfg.metrics = &metrics;
    service::QueryEngine engine(*e, pool, cfg);
    runs.push_back(engine.run_batch(reqs));
    // Re-running the same batch on the same engine must also be identical.
    const auto again = engine.run_batch(reqs);
    ASSERT_EQ(again.size(), runs.back().size());
    for (std::size_t i = 0; i < again.size(); ++i) {
      EXPECT_EQ(again[i].status, runs.back()[i].status);
      EXPECT_TRUE(same_path(again[i].path, runs.back()[i].path));
    }
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].status, runs[1][i].status) << "query " << i;
    EXPECT_EQ(runs[0][i].length, runs[1][i].length) << "query " << i;
    EXPECT_TRUE(same_path(runs[0][i].path, runs[1][i].path)) << "query " << i;
  }
}

TEST_F(ServiceFixture, ExpiredDeadlineMissesWithinOneGranuleAndIsDegraded) {
  service::QueryEngineConfig cfg;
  cfg.workers = 2;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  // A mixed batch: one already-expired deadline among healthy queries.
  // The expired query must come back kDeadlineMiss + degraded without
  // poisoning its neighbors, and fast (it is cancelled at a stage
  // boundary, never run to completion).
  auto reqs = make_requests(4, 321);
  reqs[1].deadline = runtime::Deadline::after_s(-1.0);
  const auto results = engine.run_batch(reqs);
  ASSERT_EQ(results.size(), reqs.size());

  EXPECT_EQ(results[1].status, service::QueryStatus::kDeadlineMiss);
  EXPECT_TRUE(results[1].degraded);
  EXPECT_TRUE(results[1].path.empty());
  EXPECT_LT(results[1].latency_s, 1.0);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}})
    EXPECT_NE(results[i].status, service::QueryStatus::kDeadlineMiss)
        << "query " << i;

  EXPECT_EQ(metrics.counter("service/deadline_missed").value(), 1u);
  EXPECT_EQ(metrics.counter("service/queries_total").value(), reqs.size());
}

TEST_F(ServiceFixture, InvalidEndpointsAndEmptyPoolAreReported) {
  service::QueryEngineConfig cfg;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  auto reqs = make_requests(1, 5);
  service::QueryRequest bad = reqs[0];
  Xoshiro256ss rng(6);
  do {  // draw a start inside an obstacle
    bad.start = e->space().sample(rng);
  } while (e->validity().valid(bad.start));
  const auto r = engine.run_batch(std::vector<service::QueryRequest>{bad});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].status, service::QueryStatus::kInvalidEndpoint);

  service::SnapshotPool empty;
  service::QueryEngine cold(*e, empty, cfg);
  const auto r2 = cold.run_batch(reqs);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].status, service::QueryStatus::kNoSnapshot);
}

TEST_F(ServiceFixture, QueriesNeverMutateTheSnapshotRoadmap) {
  const auto vertices = roadmap.num_vertices();
  const auto edges = roadmap.num_edges();

  service::QueryEngineConfig cfg;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);
  engine.run_batch(make_requests(6, 777));

  auto ref = pool.acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->roadmap.num_vertices(), vertices);
  EXPECT_EQ(ref->roadmap.num_edges(), edges);

  // Same property for the sequential path on a local const roadmap.
  const auto reqs = make_requests(2, 778);
  planner::query_roadmap(*e, roadmap, reqs[0].start, reqs[0].goal, 8,
                         params.resolution);
  EXPECT_EQ(roadmap.num_vertices(), vertices);
  EXPECT_EQ(roadmap.num_edges(), edges);
}

TEST_F(ServiceFixture, SubmitDrainPreservesAdmissionOrderAndIds) {
  service::QueryEngineConfig cfg;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  const auto reqs = make_requests(5, 42);
  std::vector<std::uint64_t> ids;
  ids.reserve(reqs.size());
  for (const auto& q : reqs) ids.push_back(engine.submit(q));
  const auto drained = engine.drain();
  ASSERT_EQ(drained.size(), reqs.size());
  const auto batch = engine.run_batch(reqs);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].first, ids[i]);
    EXPECT_EQ(drained[i].second.status, batch[i].status);
    EXPECT_TRUE(same_path(drained[i].second.path, batch[i].path));
  }
  EXPECT_TRUE(engine.drain().empty());
}

TEST_F(ServiceFixture, EngineServesConsistentlyAcrossEpochSwap) {
  service::QueryEngineConfig cfg;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  const auto reqs = make_requests(4, 1234);
  const auto before = engine.run_batch(reqs);
  service::densify_and_publish(pool, *e, params, 400, 55);
  const auto after = engine.run_batch(reqs);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(before[i].epoch, 1u);
    if (after[i].status == service::QueryStatus::kSolved) {
      EXPECT_EQ(after[i].epoch, 2u);
    }
    // Densification only adds vertices/edges: reachability never regresses.
    if (before[i].status == service::QueryStatus::kSolved) {
      EXPECT_EQ(after[i].status, service::QueryStatus::kSolved) << i;
    }
  }
  // The finder cache was rebuilt exactly once per epoch observed.
  EXPECT_EQ(metrics.counter("service/finder_rebuilds").value(), 2u);
}

TEST_F(ServiceFixture, MetricsPublishUnderDeterministicKeys) {
  runtime::MetricsRegistry metrics;
  service::QueryEngineConfig cfg;
  cfg.resolution = params.resolution;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);
  engine.run_batch(make_requests(3, 9));
  engine.publish_pool_metrics();

  const std::string json = metrics.to_json();
  for (const char* key :
       {"service/queries_total", "service/queries_solved",
        "service/queries_unreachable", "service/queries_invalid",
        "service/deadline_missed", "service/finder_rebuilds",
        "service/latency_us", "service/epoch", "service/snapshots_live",
        "service/snapshot_readers", "service/snapshots_published",
        "service/snapshots_reclaimed"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing metrics key: " << key;
  }
  EXPECT_EQ(metrics.counter("service/queries_total").value(), 3u);
  EXPECT_EQ(metrics.histogram("service/latency_us").count(), 3u);

  const auto lat = engine.latency();
  EXPECT_EQ(lat.count, 3u);
  EXPECT_GT(lat.p50_us, 0.0);
  EXPECT_LE(lat.p50_us, lat.p99_us);
  EXPECT_LE(lat.p99_us, lat.p999_us);
}

TEST(ServiceLatency, QuantilesReportLog2BucketUpperBounds) {
  runtime::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(3.0);   // bucket [2,4)
  h.observe(1000.0);                             // bucket [512,1024)
  const auto q = service::summarize_latency(h);
  EXPECT_EQ(q.count, 100u);
  EXPECT_DOUBLE_EQ(q.p50_us, 4.0);
  EXPECT_DOUBLE_EQ(q.p99_us, 4.0);
  EXPECT_DOUBLE_EQ(q.p999_us, 1024.0);

  runtime::Histogram empty;
  const auto z = service::summarize_latency(empty);
  EXPECT_EQ(z.count, 0u);
  EXPECT_DOUBLE_EQ(z.p50_us, 0.0);
}

TEST_F(ServiceFixture, ConcurrentBatchesAgainstChurningPoolStayValid) {
  // End-to-end RCU pressure: a background thread keeps densifying and
  // publishing new epochs while the engine serves waves. Every solved
  // answer must be a valid path whose epoch tag is one the pool actually
  // published.
  service::QueryEngineConfig cfg;
  cfg.workers = 2;
  cfg.resolution = params.resolution;
  runtime::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  service::QueryEngine engine(*e, pool, cfg);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::uint64_t seed = 1000;
    while (!stop.load(std::memory_order_acquire))
      service::densify_and_publish(pool, *e, params, 50, seed++);
  });

  const auto reqs = make_requests(4, 2024);
  std::size_t solved = 0;
  for (int wave = 0; wave < 6; ++wave) {
    for (const auto& r : engine.run_batch(reqs)) {
      if (r.status != service::QueryStatus::kSolved) continue;
      ++solved;
      EXPECT_GE(r.epoch, 1u);
      EXPECT_LE(r.epoch, pool.published_total());
      EXPECT_TRUE(planner::path_valid(*e, r.path, params.resolution));
    }
  }
  stop.store(true, std::memory_order_release);
  publisher.join();
  EXPECT_GT(solved, 0u);
}

}  // namespace
}  // namespace pmpl
