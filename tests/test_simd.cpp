// Wide (SIMD) validity-kernel guarantees (DESIGN.md §5g):
//  - lane placement and every hit_mask overload are bit-identical to the
//    scalar geo routines at every dispatch level this CPU supports;
//  - the blocked first_collision path returns the same verdict and the
//    same `queries` count as the pre-wide sequential sweep, with work
//    counters identical across dispatch levels;
//  - batched validity (valid_batch / valid_mask / EdgeBatchPlanner / the
//    PRM cross-edge window) is decision- and stats-identical to the
//    sequential reference on every space kind.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collision/checker.hpp"
#include "cspace/local_planner.hpp"
#include "cspace/validity.hpp"
#include "env/builders.hpp"
#include "geometry/intersect.hpp"
#include "geometry/intersect_wide.hpp"
#include "geometry/pose_block.hpp"
#include "geometry/simd.hpp"
#include "planner/prm.hpp"
#include "util/rng.hpp"

namespace pmpl {
namespace {

/// Restores the process-wide dispatch level on scope exit.
struct SimdLevelGuard {
  geo::SimdLevel saved = geo::simd_level();
  ~SimdLevelGuard() { geo::set_simd_level(saved); }
};

std::vector<geo::SimdLevel> available_levels() {
  std::vector<geo::SimdLevel> out{geo::SimdLevel::kScalar};
  if (geo::detected_simd_level() >= geo::SimdLevel::kSse2)
    out.push_back(geo::SimdLevel::kSse2);
  if (geo::detected_simd_level() >= geo::SimdLevel::kAvx2)
    out.push_back(geo::SimdLevel::kAvx2);
  return out;
}

geo::Transform random_pose(Xoshiro256ss& rng, double span) {
  return {geo::Quat::uniform(rng.uniform(), rng.uniform(), rng.uniform()),
          {rng.uniform(-span, span), rng.uniform(-span, span),
           rng.uniform(-span, span)}};
}

bool bits_equal(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

// --- lane placement -------------------------------------------------------

TEST(SimdWide, BoxPlacementBitIdenticalAtEveryLevel) {
  SimdLevelGuard guard;
  const geo::Obb body{{0.5, -0.25, 0.125}, {2.0, 1.0, 0.5},
                      geo::Mat3::identity()};
  Xoshiro256ss rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    geo::PoseBlock block;
    const std::size_t n = 1 + rng.index(geo::kWideLanes);
    for (std::size_t i = 0; i < n; ++i) block.push(random_pose(rng, 40.0));

    for (const geo::SimdLevel level : available_levels()) {
      geo::set_simd_level(level);
      geo::ObbLanes4 lanes;
      geo::place_box_lanes(block.tx, block.ty, block.tz, block.qw, block.qx,
                           block.qy, block.qz, n, body, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        const geo::Obb ref = block.get(i).apply(body);
        const geo::Obb got = geo::lane_obb(lanes, i);
        EXPECT_TRUE(bits_equal(got.center.x, ref.center.x)) << trial;
        EXPECT_TRUE(bits_equal(got.center.y, ref.center.y)) << trial;
        EXPECT_TRUE(bits_equal(got.center.z, ref.center.z)) << trial;
        for (const auto& [gr, rr] : {std::pair{got.rot.r0, ref.rot.r0},
                                     std::pair{got.rot.r1, ref.rot.r1},
                                     std::pair{got.rot.r2, ref.rot.r2}}) {
          EXPECT_TRUE(bits_equal(gr.x, rr.x)) << trial << " "
                                              << to_string(level);
          EXPECT_TRUE(bits_equal(gr.y, rr.y)) << trial;
          EXPECT_TRUE(bits_equal(gr.z, rr.z)) << trial;
        }
      }
    }
  }
}

TEST(SimdWide, SpherePlacementBitIdenticalAtEveryLevel) {
  SimdLevelGuard guard;
  const geo::Sphere body{{0.75, 0.0, -1.5}, 1.25};
  Xoshiro256ss rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    geo::PoseBlock block;
    const std::size_t n = 1 + rng.index(geo::kWideLanes);
    for (std::size_t i = 0; i < n; ++i) block.push(random_pose(rng, 40.0));

    for (const geo::SimdLevel level : available_levels()) {
      geo::set_simd_level(level);
      geo::SphereLanes4 lanes;
      geo::place_sphere_lanes(block.tx, block.ty, block.tz, block.qw,
                              block.qx, block.qy, block.qz, n, body, lanes);
      for (std::size_t i = 0; i < n; ++i) {
        const geo::Sphere ref = block.get(i).apply(body);
        const geo::Sphere got = geo::lane_sphere(lanes, i);
        EXPECT_TRUE(bits_equal(got.center.x, ref.center.x)) << trial;
        EXPECT_TRUE(bits_equal(got.center.y, ref.center.y)) << trial;
        EXPECT_TRUE(bits_equal(got.center.z, ref.center.z)) << trial;
      }
    }
  }
}

// --- hit masks ------------------------------------------------------------

/// Sweeps poses whose distance to the obstacle crosses the contact
/// boundary, so the mask mixes hits, misses, and near-touching lanes.
TEST(SimdWide, HitMasksMatchScalarIntersects) {
  SimdLevelGuard guard;
  const geo::Obb box_body{{0, 0, 0}, {1.5, 1.0, 0.75},
                          geo::Mat3::identity()};
  const geo::Sphere sphere_body{{0, 0, 0}, 1.0};
  const geo::Aabb aabb_obs{{-2, -2, -2}, {2, 2, 2}};
  const geo::Obb obb_obs = geo::Obb::from_aabb({{-1.5, -2, -1}, {2, 1.5, 2}});
  const geo::Sphere sphere_obs{{0.5, -0.5, 0.25}, 2.0};

  Xoshiro256ss rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    geo::PoseBlock block;
    const std::size_t n = 1 + rng.index(geo::kWideLanes);
    // Mix far, near-boundary, and overlapping placements.
    for (std::size_t i = 0; i < n; ++i) {
      geo::Transform t = random_pose(rng, 1.0);
      const double d = rng.uniform(0.0, 8.0);  // 0 = inside, 8 = clear
      t.translation = t.translation + geo::Vec3{d, d * 0.5, d * 0.25};
      block.push(t);
    }

    std::uint32_t expect_box[3] = {0, 0, 0};
    std::uint32_t expect_sph[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      const geo::Obb wb = block.get(i).apply(box_body);
      const geo::Sphere ws = block.get(i).apply(sphere_body);
      if (geo::intersects(wb, aabb_obs)) expect_box[0] |= 1u << i;
      if (geo::intersects(wb, obb_obs)) expect_box[1] |= 1u << i;
      if (geo::intersects(sphere_obs, wb)) expect_box[2] |= 1u << i;
      if (geo::intersects(ws, aabb_obs)) expect_sph[0] |= 1u << i;
      if (geo::intersects(ws, obb_obs)) expect_sph[1] |= 1u << i;
      if (geo::intersects(ws, sphere_obs)) expect_sph[2] |= 1u << i;
    }

    for (const geo::SimdLevel level : available_levels()) {
      geo::set_simd_level(level);
      geo::ObbLanes4 ob;
      geo::SphereLanes4 sp;
      geo::place_box_lanes(block.tx, block.ty, block.tz, block.qw, block.qx,
                           block.qy, block.qz, n, box_body, ob);
      geo::place_sphere_lanes(block.tx, block.ty, block.tz, block.qw,
                              block.qx, block.qy, block.qz, n, sphere_body,
                              sp);
      EXPECT_EQ(geo::hit_mask(ob, n, aabb_obs), expect_box[0])
          << trial << " " << to_string(level);
      EXPECT_EQ(geo::hit_mask(ob, n, obb_obs), expect_box[1])
          << trial << " " << to_string(level);
      EXPECT_EQ(geo::hit_mask(ob, n, sphere_obs), expect_box[2])
          << trial << " " << to_string(level);
      EXPECT_EQ(geo::hit_mask(sp, n, aabb_obs), expect_sph[0])
          << trial << " " << to_string(level);
      EXPECT_EQ(geo::hit_mask(sp, n, obb_obs), expect_sph[1])
          << trial << " " << to_string(level);
      EXPECT_EQ(geo::hit_mask(sp, n, sphere_obs), expect_sph[2])
          << trial << " " << to_string(level);
    }
  }
}

// --- blocked first_collision ----------------------------------------------

TEST(SimdWide, FirstCollisionMatchesSequentialAcrossLevels) {
  SimdLevelGuard guard;
  const auto e = env::med_cube();
  const auto& checker = e->checker();
  const auto& robot = e->robot();
  Xoshiro256ss rng(14);

  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.index(geo::PoseBlock::kCapacity);
    std::vector<geo::Transform> poses;
    geo::PoseBlock block;
    for (std::size_t i = 0; i < n; ++i) {
      geo::Transform t = random_pose(rng, 0.5);
      t.translation = {rng.uniform(20.0, 80.0), rng.uniform(20.0, 80.0),
                       rng.uniform(20.0, 80.0)};
      poses.push_back(t);
      block.push(t);
    }

    collision::CollisionStats seq;
    const std::size_t ref =
        checker.first_collision_sequential(robot, poses, &seq);

    std::size_t base_first = 0;
    collision::CollisionStats base_stats;
    for (std::size_t li = 0; li < available_levels().size(); ++li) {
      geo::set_simd_level(available_levels()[li]);
      collision::CollisionStats bs;
      const std::size_t got = checker.first_collision(robot, block, &bs);
      EXPECT_EQ(got, ref) << trial;  // same verdict as the per-pose sweep
      EXPECT_EQ(bs.queries, seq.queries) << trial;  // verdicts consumed
      if (li == 0) {
        base_first = got;
        base_stats = bs;
      } else {
        // Work counters follow the block contract: they differ from the
        // sequential sweep but are identical at every dispatch level.
        EXPECT_EQ(got, base_first);
        EXPECT_EQ(bs.narrow_tests, base_stats.narrow_tests) << trial;
        EXPECT_EQ(bs.bvh_nodes, base_stats.bvh_nodes) << trial;
      }
    }

    // The span overload chunks into the same blocks.
    collision::CollisionStats span_stats;
    EXPECT_EQ(checker.first_collision(robot, poses, &span_stats), ref);
    EXPECT_EQ(span_stats.queries, seq.queries);

    // collision_mask agrees with per-pose in_collision on every bit.
    std::uint32_t expect_mask = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (checker.in_collision(robot, poses[i])) expect_mask |= 1u << i;
    EXPECT_EQ(checker.collision_mask(robot, block), expect_mask) << trial;
  }
}

// --- batched validity across space kinds ----------------------------------

TEST(SimdWide, ValidBatchMatchesSequentialOnEverySpaceKind) {
  SimdLevelGuard guard;
  const std::vector<collision::ObstacleShape> obstacles{
      collision::ObstacleShape{geo::Aabb{{40, 40, 40}, {60, 60, 60}}},
      collision::ObstacleShape{geo::Sphere{{20, 70, 30}, 8.0}}};
  const collision::CollisionChecker checker{
      std::vector<collision::ObstacleShape>(obstacles)};
  const collision::RigidBody robot = collision::RigidBody::box({3, 2, 1});

  const geo::Aabb bounds{{0, 0, 0}, {100, 100, 100}};
  const std::vector<cspace::CSpace> spaces{
      cspace::CSpace::euclidean({{0, 100}, {0, 100}, {0, 100}}),
      cspace::CSpace::se2(bounds),
      cspace::CSpace::se3(bounds)};

  for (const auto& space : spaces) {
    const cspace::RigidBodyValidity validity(space, robot, checker);
    Xoshiro256ss rng(15);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<cspace::Config> cs;
      const std::size_t n = 1 + rng.index(24);
      for (std::size_t i = 0; i < n; ++i) cs.push_back(space.sample(rng));

      // Sequential reference: valid() per config, stop at first failure.
      std::size_t ref = cs.size();
      for (std::size_t i = 0; i < cs.size(); ++i)
        if (!validity.valid(cs[i])) {
          ref = i;
          break;
        }
      std::uint32_t ref_mask = 0;
      for (std::size_t i = 0; i < cs.size(); ++i)
        if (validity.valid(cs[i])) ref_mask |= 1u << i;

      for (const geo::SimdLevel level : available_levels()) {
        geo::set_simd_level(level);
        EXPECT_EQ(validity.valid_batch(cs), ref)
            << trial << " kind=" << static_cast<int>(space.kind());
        EXPECT_EQ(validity.valid_mask(cs), ref_mask)
            << trial << " kind=" << static_cast<int>(space.kind());
      }
    }
  }
}

// --- ValidityStats regression ---------------------------------------------

/// Pins the ValidityStats contract: checks = verdicts consumed, hits =
/// batches terminated early — identical on the sequential default, the
/// wide batch path, and at every dispatch level, because verdicts are.
TEST(SimdWide, ValidityStatsIdenticalOnEveryPath) {
  SimdLevelGuard guard;
  const auto e = env::med_cube();
  const auto& validity = e->validity();
  const auto& space = e->space();

  Xoshiro256ss rng(16);
  cspace::ValidityStats expected;  // computed from per-config valid()
  std::vector<std::vector<cspace::Config>> batches;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<cspace::Config> cs;
    const std::size_t n = 1 + rng.index(20);
    for (std::size_t i = 0; i < n; ++i) cs.push_back(space.sample(rng));
    std::size_t first = cs.size();
    for (std::size_t i = 0; i < cs.size(); ++i)
      if (!validity.valid(cs[i])) {
        first = i;
        break;
      }
    if (first < cs.size()) {
      expected.checks += first + 1;
      expected.hits += 1;
    } else {
      expected.checks += cs.size();
    }
    batches.push_back(std::move(cs));
  }
  ASSERT_GT(expected.hits, 0u);  // the sweep must exercise early exits

  for (const geo::SimdLevel level : available_levels()) {
    geo::set_simd_level(level);
    cspace::ValidityStats vs;
    for (const auto& cs : batches) validity.valid_batch_counted(cs, vs);
    EXPECT_EQ(vs.checks, expected.checks) << to_string(level);
    EXPECT_EQ(vs.hits, expected.hits) << to_string(level);
  }
}

// --- EdgeBatchPlanner ------------------------------------------------------

TEST(SimdWide, EdgeBatchPlannerMatchesLocalPlannerPerEdge) {
  const auto e = env::med_cube();
  const auto& space = e->space();
  const cspace::LocalPlanner lp(space, e->validity(), 1.0);
  cspace::EdgeBatchPlanner ebp(space, e->validity(), 1.0, 8);

  Xoshiro256ss rng(17);
  std::vector<std::pair<cspace::Config, cspace::Config>> edges;
  for (int i = 0; i < 64; ++i) {
    cspace::Config a = space.sample(rng);
    cspace::Config b = space.sample(rng);
    // Mix long edges with short ones (n <= 1 fast path).
    if (i % 5 == 0) b = space.interpolate(a, b, 0.01);
    edges.emplace_back(std::move(a), std::move(b));
  }

  // Reference results, one isolated plan per edge.
  std::vector<cspace::LocalPlanResult> ref;
  for (const auto& [a, b] : edges) ref.push_back(lp.plan(a, b));

  // Windowed: keep the window full, drain FIFO; outcomes must match the
  // per-edge reference bit for bit regardless of what shares the window.
  std::size_t next_admit = 0, committed = 0;
  while (committed < edges.size()) {
    while (next_admit < edges.size() && ebp.can_admit()) {
      ebp.admit(edges[next_admit].first, edges[next_admit].second,
                next_admit);
      ++next_admit;
    }
    const auto out = ebp.next();
    ASSERT_EQ(out.tag, committed);  // FIFO
    EXPECT_EQ(out.result.success, ref[out.tag].success) << out.tag;
    EXPECT_EQ(out.result.steps_checked, ref[out.tag].steps_checked)
        << out.tag;
    EXPECT_TRUE(bits_equal(out.result.length, ref[out.tag].length))
        << out.tag;
    ++committed;
  }
}

// --- PRM cross-edge window -------------------------------------------------

TEST(SimdWide, PrmBatchedEdgesBitIdenticalToSequential) {
  const auto e = env::med_cube();

  planner::PrmParams seq_params;
  seq_params.batch_edges = false;
  planner::Prm seq(*e, seq_params);
  seq.build(1200, 99);

  planner::PrmParams bat_params;
  bat_params.batch_edges = true;
  planner::Prm bat(*e, bat_params);
  bat.build(1200, 99);

  ASSERT_EQ(bat.roadmap().num_vertices(), seq.roadmap().num_vertices());
  ASSERT_EQ(bat.roadmap().num_edges(), seq.roadmap().num_edges());
  for (graph::VertexId v = 0; v < seq.roadmap().num_vertices(); ++v) {
    const auto& es = seq.roadmap().edges_of(v);
    const auto& eb = bat.roadmap().edges_of(v);
    ASSERT_EQ(es.size(), eb.size()) << v;
    for (std::size_t i = 0; i < es.size(); ++i) {
      EXPECT_EQ(es[i].to, eb[i].to) << v;
      EXPECT_TRUE(bits_equal(es[i].prop.length, eb[i].prop.length)) << v;
    }
  }
  // The full planner-stats contract: identical semantic counters.
  EXPECT_EQ(bat.stats().cd.queries, seq.stats().cd.queries);
  EXPECT_EQ(bat.stats().lp_attempts, seq.stats().lp_attempts);
  EXPECT_EQ(bat.stats().lp_success, seq.stats().lp_success);
  EXPECT_EQ(bat.stats().lp_steps, seq.stats().lp_steps);
  EXPECT_EQ(bat.stats().samples_valid, seq.stats().samples_valid);
}

}  // namespace
}  // namespace pmpl
