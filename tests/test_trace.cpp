// Tracing & metrics layer: ring-buffer semantics (wraparound, exact drop
// counts), span nesting, the Chrome-trace exporter (valid JSON that
// round-trips event counts), MetricsRegistry determinism and kind safety,
// the publish helpers, and the two end-to-end contracts: tracing disabled
// produces zero events and a bit-identical roadmap, and the "phases"
// virtual track of a DES replay reproduces its PhaseBreakdown exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel_build.hpp"
#include "core/prm_driver.hpp"
#include "env/builders.hpp"
#include "loadbal/metrics.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "runtime/work_units.hpp"
#include "util/json_mini.hpp"

namespace {

using namespace pmpl;
using runtime::TraceBuffer;
using runtime::TraceEvent;
using runtime::Tracer;
using runtime::TraceType;

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  if (!f) return out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// ---------------------------------------------------------------- ring

TEST(TraceBuffer, WraparoundKeepsNewestAndCountsDropsExactly) {
  TraceBuffer buf("ring", 8);
  for (std::uint64_t i = 0; i < 20; ++i)
    buf.instant_at("e", static_cast<double>(i), i);
  EXPECT_EQ(buf.total(), 20u);
  EXPECT_EQ(buf.dropped(), 12u);
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, 12u + i);  // oldest retained first
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(12 + i));
  }
}

TEST(TraceBuffer, NoDropsUnderCapacity) {
  TraceBuffer buf("ring", 8);
  for (std::uint64_t i = 0; i < 5; ++i) buf.instant_at("e", 0.0, i);
  EXPECT_EQ(buf.total(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.snapshot().size(), 5u);
}

TEST(TraceBuffer, EventIs32Bytes) {
  EXPECT_EQ(sizeof(TraceEvent), 32u);
}

// ---------------------------------------------------------------- spans

TEST(TraceSpan, NestingIsWellFormed) {
  Tracer tracer;
  TraceBuffer* buf = tracer.track("spans");
  {
    runtime::TraceSpan outer(&tracer, buf, "outer", 1);
    {
      runtime::TraceSpan inner(&tracer, buf, "inner", 2);
    }
    {
      runtime::TraceSpan inner2(&tracer, buf, "inner2", 3);
    }
  }
  const auto events = buf->snapshot();
  ASSERT_EQ(events.size(), 6u);
  // Balanced: depth never negative, ends in LIFO order, final depth zero.
  std::vector<const char*> stack;
  for (const TraceEvent& ev : events) {
    if (ev.type == TraceType::kBegin) {
      stack.push_back(ev.name);
    } else if (ev.type == TraceType::kEnd) {
      ASSERT_FALSE(stack.empty());
      EXPECT_STREQ(stack.back(), ev.name);
      stack.pop_back();
    }
    EXPECT_GE(ev.t, 0.0);
  }
  EXPECT_TRUE(stack.empty());
}

TEST(TraceSpan, NullBufferIsANoOp) {
  Tracer tracer;
  runtime::TraceSpan span(&tracer, nullptr, "nothing");
  EXPECT_EQ(tracer.total_events(), 0u);
}

TEST(Tracer, ThreadTrackCacheDoesNotOutliveTracer) {
  // The per-thread track cache is keyed by tracer id, not address: a new
  // tracer (even one reusing the old one's storage) must hand out its own
  // fresh track rather than a dangling cached pointer.
  {
    Tracer first;
    first.thread_track("first")->instant_at("a", 0.0);
    EXPECT_EQ(first.total_events(), 1u);
  }
  Tracer second;
  TraceBuffer* t = second.thread_track("second");
  t->instant_at("b", 0.0);
  ASSERT_EQ(second.tracks().size(), 1u);
  EXPECT_EQ(second.tracks()[0], t);
  EXPECT_EQ(second.total_events(), 1u);
}

// ---------------------------------------------------------------- export

TEST(ChromeExport, ParsesAsJsonAndRoundTripsEventCounts) {
  Tracer tracer;
  TraceBuffer* a = tracer.track("alpha");
  TraceBuffer* b = tracer.track("beta \"quoted\"");
  a->begin_at("work", 0.001, 7);
  a->begin_at("sub", 0.002);
  a->end_at("sub", 0.003);
  a->end_at("work", 0.004);
  a->instant_at("mark", 0.005, 42);
  a->counter_at("queue", 0.006, 9);
  b->instant_at("x", 0.5);
  b->instant_at("y", 1.5);

  const std::string path = temp_path("trace_roundtrip.json");
  ASSERT_TRUE(export_chrome_trace(tracer, path));

  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(read_file(path), root, &err)) << err;
  const json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // 2 metadata events (one per track) + 8 payload events.
  std::map<std::string, int> by_ph;
  for (const auto& ev : events->as_array()) {
    const json::Value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    ++by_ph[ph->as_string()];
  }
  EXPECT_EQ(by_ph["M"], 2);
  EXPECT_EQ(by_ph["B"], 2);
  EXPECT_EQ(by_ph["E"], 2);
  EXPECT_EQ(by_ph["i"], 3);
  EXPECT_EQ(by_ph["C"], 1);
  EXPECT_EQ(events->as_array().size(), 10u);

  // otherData mirrors the per-track totals (nothing dropped here).
  const json::Value* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  const json::Value* tracks = other->find("tracks");
  ASSERT_NE(tracks, nullptr);
  ASSERT_EQ(tracks->as_array().size(), 2u);
  EXPECT_EQ(tracks->as_array()[0].find("events_total")->as_number(), 6.0);
  EXPECT_EQ(tracks->as_array()[0].find("events_dropped")->as_number(), 0.0);
  EXPECT_EQ(tracks->as_array()[1].find("events_total")->as_number(), 2.0);
  EXPECT_EQ(tracks->as_array()[1].find("name")->as_string(),
            "beta \"quoted\"");
}

TEST(ChromeExport, SkipsEndEventsOrphanedByDropOldest) {
  Tracer tracer;
  TraceBuffer* t = tracer.track("tiny", 4);
  t->begin_at("span", 0.0);
  t->instant_at("i1", 1.0);
  t->instant_at("i2", 2.0);
  t->instant_at("i3", 3.0);
  t->instant_at("i4", 4.0);  // overwrites the begin
  t->end_at("span", 5.0);    // its begin is gone -> must be skipped
  EXPECT_EQ(t->dropped(), 2u);

  const std::string path = temp_path("trace_orphan.json");
  ASSERT_TRUE(export_chrome_trace(tracer, path));
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(read_file(path), root, &err)) << err;
  int ends = 0, instants = 0;
  for (const auto& ev : root.find("traceEvents")->as_array()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(ends, 0);
  EXPECT_EQ(instants, 3);  // i2..i4 retained; i1 overwritten
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, SnapshotIsDeterministicAndSorted) {
  auto fill = [](runtime::MetricsRegistry& reg) {
    reg.add("z/count", 3);
    reg.add("a/count", 1);
    reg.set("m/gauge", 0.25);
    reg.observe("h/lat_us", 3.0);
    reg.observe("h/lat_us", 700.0);
  };
  runtime::MetricsRegistry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(r1.to_json(), r2.to_json());
  // And it is valid JSON with the flat three-section schema.
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(r1.to_json(), root, &err)) << err;
  EXPECT_EQ(root.find("counters")->find("a/count")->as_number(), 1.0);
  EXPECT_EQ(root.find("counters")->find("z/count")->as_number(), 3.0);
  EXPECT_EQ(root.find("gauges")->find("m/gauge")->as_number(), 0.25);
  const json::Value* h = root.find("histograms")->find("h/lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->as_number(), 703.0);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  runtime::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.counter("x").increment();  // same kind is fine
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(MetricsRegistry, HistogramBucketsAreLog2) {
  using runtime::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_of(1.9), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 11u);
}

TEST(MetricsRegistry, FixedSeedReplayPublishesIdenticalSnapshots) {
  const auto e = env::small_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 32, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 2048;
  wcfg.seed = 5;
  const auto w = core::build_prm_workload(*e, grid, wcfg);

  auto snapshot = [&] {
    core::PrmRunConfig cfg;
    cfg.procs = 8;
    cfg.strategy = core::Strategy::kHybridWS;
    cfg.seed = 5;
    const auto r = core::simulate_prm_run(w, cfg);
    runtime::MetricsRegistry reg;
    publish(reg, r.ws, "ws/");
    return reg.to_json();
  };
  EXPECT_EQ(snapshot(), snapshot());
}

// ---------------------------------------------------------------- publish

TEST(Publish, WorkCountsAndWorkerStats) {
  runtime::MetricsRegistry reg;
  runtime::WorkCounts w;
  w.cd_queries = 10;
  w.knn_candidates = 4;
  runtime::WorkCounts w2 = w;
  w2 += w;
  EXPECT_EQ(w2.cd_queries, 20u);
  EXPECT_EQ(w2.total(), 28u);
  publish(reg, w2, "work/");
  EXPECT_EQ(reg.counter("work/cd_queries").value(), 20u);
  EXPECT_EQ(reg.counter("work/knn_candidates").value(), 8u);

  // WorkCounts::to_json is itself valid JSON.
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(w2.to_json(), root, &err)) << err;
  EXPECT_EQ(root.find("cd_queries")->as_number(), 20.0);

  std::vector<loadbal::WorkerStats> stats(2);
  stats[0].executed_local = 6;
  stats[0].steal_attempts = 4;
  stats[0].steal_failures = 1;
  stats[1].executed_stolen = 2;
  stats[1].park_s = 0.5;
  publish(reg, stats, "workers/");
  EXPECT_EQ(reg.counter("workers/executed_local").value(), 6u);
  EXPECT_EQ(reg.counter("workers/executed_stolen").value(), 2u);
  EXPECT_EQ(reg.counter("workers/steal_attempts").value(), 4u);
  EXPECT_EQ(reg.counter("workers/steal_failures").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("workers/park_total_s").value(), 0.5);
}

// ------------------------------------------------------- end-to-end: off

TEST(TraceEndToEnd, DisabledTracingHasZeroEventsAndIdenticalRoadmap) {
  const auto e = env::small_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 16, false);

  auto build = [&](runtime::Tracer* tracer) {
    core::ParallelPrmConfig cfg;
    cfg.total_attempts = 1500;
    cfg.seed = 11;
    cfg.workers = 3;
    cfg.tracer = tracer;
    return core::parallel_build_prm(*e, grid, cfg);
  };
  runtime::Tracer tracer;
  const auto traced = build(&tracer);
  const auto untraced = build(nullptr);
  EXPECT_GT(tracer.total_events(), 0u);

  // Bit-identical roadmap: same vertices (configs) and same edges.
  ASSERT_EQ(traced.roadmap.num_vertices(), untraced.roadmap.num_vertices());
  ASSERT_EQ(traced.roadmap.num_edges(), untraced.roadmap.num_edges());
  for (graph::VertexId v = 0; v < traced.roadmap.num_vertices(); ++v) {
    const auto& a = traced.roadmap.vertex(v).cfg;
    const auto& b = untraced.roadmap.vertex(v).cfg;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    const auto& ea = traced.roadmap.edges_of(v);
    const auto& eb = untraced.roadmap.edges_of(v);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].to, eb[i].to);
      EXPECT_EQ(ea[i].prop.length, eb[i].prop.length);
    }
  }
}

// ---------------------------------------------------- end-to-end: phases

TEST(TraceEndToEnd, PhasesTrackReproducesPhaseBreakdown) {
  const auto e = env::small_cube();
  const core::RegionGrid grid =
      core::RegionGrid::make_auto(e->space().position_bounds(), 32, false);
  core::PrmWorkloadConfig wcfg;
  wcfg.total_attempts = 2048;
  wcfg.seed = 3;
  const auto w = core::build_prm_workload(*e, grid, wcfg);

  runtime::Tracer tracer;
  core::PrmRunConfig cfg;
  cfg.procs = 8;
  cfg.strategy = core::Strategy::kHybridWS;
  cfg.seed = 3;
  cfg.tracer = &tracer;
  cfg.trace_prefix = "HybridWS/";
  cfg.trace_ranks = true;
  const auto r = core::simulate_prm_run(w, cfg);
  ASSERT_FALSE(r.ws.hit_event_limit);

  const TraceBuffer* phases = nullptr;
  std::size_t rank_tracks = 0;
  for (const TraceBuffer* t : tracer.tracks()) {
    if (t->track_name() == "HybridWS/phases") phases = t;
    if (t->track_name().rfind("HybridWS/rank ", 0) == 0) ++rank_tracks;
  }
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(rank_tracks, 8u);

  // Span durations on the phases track equal the reported breakdown.
  std::map<std::string, double> dur;
  std::map<std::string, double> open;
  for (const TraceEvent& ev : phases->snapshot()) {
    if (ev.type == TraceType::kBegin) open[ev.name] = ev.t;
    if (ev.type == TraceType::kEnd) dur[ev.name] += ev.t - open[ev.name];
  }
  // The track lays phases end-to-end on a cumulative timeline, so span
  // differences carry ~1 ulp of that accumulation — far inside the 1%
  // agreement the trace contract promises, but not bit-exact.
  const auto near = [&](double a, double b) {
    EXPECT_NEAR(a, b, 1e-9 * (1.0 + r.phases.total()));
  };
  near(dur["setup"], r.phases.setup_s);
  near(dur["sampling"], r.phases.sampling_s);
  near(dur["redistribution"], r.phases.redistribution_s);
  near(dur["node_connection"], r.phases.node_connection_s);
  near(dur["region_connection"], r.phases.region_connection_s);

  // Rank tracks carry virtual-time events inside the simulated makespan.
  for (const TraceBuffer* t : tracer.tracks()) {
    if (t->track_name().rfind("HybridWS/rank ", 0) != 0) continue;
    for (const TraceEvent& ev : t->snapshot()) {
      EXPECT_GE(ev.t, 0.0);
      EXPECT_LE(ev.t, r.ws.makespan_s * (1.0 + 1e-9));
    }
  }
}

// ------------------------------------------------- concurrency (TSan job)

TEST(TraceConcurrency, SchedulerWorkersEmitConcurrently) {
  runtime::Tracer tracer;
  std::atomic<int> ran{0};
  {
    runtime::SchedulerOptions options;
    options.tracer = &tracer;
    runtime::Scheduler sched(4, options);
    runtime::TaskGroup group;
    for (int i = 0; i < 512; ++i)
      sched.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                   &group);
    sched.wait(group);
  }  // workers joined: the trace buffers are quiescent before export
  EXPECT_EQ(ran.load(), 512);
  EXPECT_GT(tracer.total_events(), 0u);
  // Workers are quiescent after wait+destructor; export must be well-formed.
  const std::string path = temp_path("trace_sched.json");
  ASSERT_TRUE(export_chrome_trace(tracer, path));
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(read_file(path), root, &err)) << err;
}

}  // namespace
