// Distributed-tracing toolchain tests: the clock-offset estimator, the
// correlation-id packing, trace_merge's cross-clock alignment and
// restart-generation handling, the flight recorder's corruption-safe
// round trip, and the end-to-end supervisor salvage of a SIGKILLed
// rank's trace through a real socket cluster, finished off by the
// ws_report analyzer over the merged timeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "loadbal/ws_cluster.hpp"
#include "loadbal/ws_report.hpp"
#include "runtime/trace.hpp"
#include "runtime/trace_merge.hpp"
#include "runtime/transport.hpp"
#include "util/json_mini.hpp"

using namespace pmpl;
using pmpl::json::Value;

namespace {

std::string tmp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

/// Parse a trace file on disk into a merge input labeled with its path.
bool load_input(const std::string& path,
                std::vector<runtime::MergeInput>& inputs) {
  std::string text, err;
  Value root;
  if (!read_file(path, text) || !json::parse(text, root, &err)) return false;
  inputs.push_back({path, std::move(root)});
  return true;
}

/// clusterClock otherData member as the cluster children write it.
std::string clock_json(std::uint32_t rank, std::uint32_t gen,
                       const std::vector<const char*>& offsets) {
  std::string j = "\"clusterClock\": {\"rank\": " + std::to_string(rank) +
                  ", \"generation\": " + std::to_string(gen) +
                  ", \"epochSteadyS\": 0, \"offsets\": [";
  for (std::size_t i = 0; i < offsets.size(); ++i)
    j += std::string(i ? ", " : "") + offsets[i];
  return j + "]}";
}

/// All events named `name` in a merged trace, as (ts, pid) pairs.
std::vector<std::pair<double, int>> events_named(const Value& merged,
                                                 const std::string& name) {
  std::vector<std::pair<double, int>> out;
  for (const Value& ev : merged.find("traceEvents")->as_array()) {
    const Value* nm = ev.find("name");
    const Value* ph = ev.find("ph");
    if (!nm || !nm->is_string() || nm->as_string() != name) continue;
    if (ph && ph->is_string() && ph->as_string() == "M") continue;
    out.push_back({ev.find("ts")->as_number(),
                   static_cast<int>(ev.find("pid")->as_number())});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Clock-offset estimation (the hello-handshake NTP round trip).

TEST(ClockSync, SymmetricRoundTripRecoversOffsetExactly) {
  // Peer clock runs 0.25 s ahead; one-way delay 10 ms each direction.
  const double kOffset = 0.25, kDelay = 0.010, t0 = 5.0;
  const double t1 = (t0 + kDelay) + kOffset;  // peer's reading at receipt
  const double t2 = t0 + 2.0 * kDelay;        // reply lands locally
  EXPECT_DOUBLE_EQ(runtime::estimate_clock_offset(t0, t1, t2), kOffset);
}

TEST(ClockSync, NegativeOffsetAndZeroDelay) {
  EXPECT_DOUBLE_EQ(runtime::estimate_clock_offset(3.0, 3.0 - 0.5, 3.0), -0.5);
}

TEST(ClockSync, AsymmetricDelayErrorBoundedByHalfRtt) {
  // Forward path 1 ms, return path 20 ms: the midpoint assumption is off,
  // but the error can never exceed half the round trip.
  const double kOffset = -0.5, d_fwd = 0.001, d_ret = 0.020, t0 = 7.0;
  const double t1 = (t0 + d_fwd) + kOffset;
  const double t2 = t0 + d_fwd + d_ret;
  const double est = runtime::estimate_clock_offset(t0, t1, t2);
  EXPECT_LE(std::abs(est - kOffset), (d_fwd + d_ret) / 2.0 + 1e-12);
  EXPECT_NE(est, kOffset);  // asymmetry is visible, just bounded
}

// ---------------------------------------------------------------------------
// Correlation-id packing.

TEST(TraceCorr, PacksRankGenerationSequence) {
  EXPECT_EQ(runtime::trace_corr(3, 2, 5),
            (3u << 26) | (2u << 20) | 5u);
  // Fields wrap at their widths instead of bleeding into neighbors.
  EXPECT_EQ(runtime::trace_corr(64 + 3, 64 + 2, (1u << 20) + 5),
            runtime::trace_corr(3, 2, 5));
}

TEST(TraceCorr, NeverReturnsZero) {
  // Zero means "no correlation" to the exporter, so the one packing that
  // collapses to zero maps to the all-ones sentinel on both endpoints.
  EXPECT_EQ(runtime::trace_corr(0, 0, 0), 0xffffffffu);
  EXPECT_EQ(runtime::trace_corr(0, 0, 1u << 20), 0xffffffffu);
  EXPECT_EQ(runtime::trace_corr(0, 64, 0), 0xffffffffu);
  EXPECT_NE(runtime::trace_corr(0, 0, 1), 0u);
}

// ---------------------------------------------------------------------------
// trace_merge: clock alignment and incarnation handling.

TEST(TraceMerge, AlignsRecvAfterSendAcrossClockDomains) {
  // Rank 1's clock runs 0.5 s behind rank 0's: a frame sent at 1.0 (rank 0
  // time) lands at local 0.6 on rank 1 — apparently before it was sent.
  // Rank 1's measured offset to rank 0 (+0.5: rank 0 runs ahead) must
  // repair the order in the merged timeline.
  const std::uint32_t corr = runtime::trace_corr(0, 0, 7);
  const std::string p0 = tmp_path("merge_align.r0.g0.json");
  const std::string p1 = tmp_path("merge_align.r1.g0.json");
  {
    runtime::Tracer t;
    runtime::TraceBuffer* b = t.track("transport 0");
    b->instant_at("frame_send", 1.0, 1, corr);
    b->flow_start_at("frame", 1.0, corr, 1);
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, p0, clock_json(0, 0, {"null", "0"})));
  }
  {
    runtime::Tracer t;
    runtime::TraceBuffer* b = t.track("transport 1");
    b->instant_at("frame_recv", 0.6, 0, corr);
    b->flow_end_at("frame", 0.6, corr, 0);
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, p1, clock_json(1, 0, {"0.5", "null"})));
  }

  std::vector<runtime::MergeInput> inputs;
  ASSERT_TRUE(load_input(p0, inputs));
  ASSERT_TRUE(load_input(p1, inputs));
  const runtime::MergeResult m = runtime::merge_traces(inputs);
  ASSERT_TRUE(m.ok) << m.error;
  ASSERT_EQ(m.shift_us.size(), 2u);
  EXPECT_DOUBLE_EQ(m.shift_us[0], 0.0);
  EXPECT_DOUBLE_EQ(m.shift_us[1], 0.5e6);

  Value merged;
  std::string err;
  ASSERT_TRUE(json::parse(m.json, merged, &err)) << err;
  const auto sends = events_named(merged, "frame_send");
  const auto recvs = events_named(merged, "frame_recv");
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(recvs.size(), 1u);
  EXPECT_EQ(sends[0].second, 0);  // pid = rank
  EXPECT_EQ(recvs[0].second, 1);
  EXPECT_GE(recvs[0].first, sends[0].first);  // causality restored
  EXPECT_NEAR(recvs[0].first - sends[0].first, 0.1e6, 1.0);

  // The flow pair survives the merge with matching (cat, id) on both ends.
  std::map<std::string, int> flow_phs;
  for (const Value& ev : merged.find("traceEvents")->as_array()) {
    const Value* ph = ev.find("ph");
    if (!ph->is_string()) continue;
    const std::string& p = ph->as_string();
    if (p != "s" && p != "f") continue;
    ASSERT_TRUE(ev.find("cat") && ev.find("cat")->is_string());
    ASSERT_TRUE(ev.find("id") && ev.find("id")->is_string());
    ++flow_phs[ev.find("cat")->as_string() + "|" +
               ev.find("id")->as_string()];
  }
  ASSERT_EQ(flow_phs.size(), 1u);
  EXPECT_EQ(flow_phs.begin()->second, 2);
  EXPECT_EQ(flow_phs.begin()->first.rfind("frame|0x", 0), 0u);
}

TEST(TraceMerge, RestartGenerationsKeepSeparateTracksUnderOnePid) {
  const std::string pa = tmp_path("merge_gen.r1.g0.json");
  const std::string pb = tmp_path("merge_gen.r1.g1.json");
  {
    runtime::Tracer t;
    t.track("rank 1")->instant_at("steal_req", 0.1, 2,
                                  runtime::trace_corr(1, 0, 1));
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, pa, clock_json(1, 0, {"0", "null"})));
  }
  {
    runtime::Tracer t;
    t.track("rank 1")->instant_at("steal_req", 0.4, 0,
                                  runtime::trace_corr(1, 1, 1));
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, pb, clock_json(1, 1, {"0", "null"})));
  }
  std::vector<runtime::MergeInput> inputs;
  ASSERT_TRUE(load_input(pa, inputs));
  ASSERT_TRUE(load_input(pb, inputs));
  const runtime::MergeResult m = runtime::merge_traces(inputs);
  ASSERT_TRUE(m.ok) << m.error;

  Value merged;
  std::string err;
  ASSERT_TRUE(json::parse(m.json, merged, &err)) << err;
  std::vector<std::string> names;
  std::vector<double> tids, pids;
  for (const Value& t : merged.find("otherData")->find("tracks")->as_array()) {
    names.push_back(t.find("name")->as_string());
    tids.push_back(t.find("tid")->as_number());
    pids.push_back(t.find("pid")->as_number());
  }
  ASSERT_EQ(names.size(), 2u);
  // The restarted incarnation gets its own named track (so the two
  // timelines never interleave) but stays in rank 1's process group.
  EXPECT_NE(std::find(names.begin(), names.end(), "rank 1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "rank 1 (g1)"),
            names.end());
  EXPECT_NE(tids[0], tids[1]);
  EXPECT_EQ(pids[0], 1.0);
  EXPECT_EQ(pids[1], 1.0);
}

// ---------------------------------------------------------------------------
// Flight recorder: snapshot persistence through util/state_file.

TEST(FlightRecorder, SnapshotRoundTripsThroughStateFile) {
  runtime::Tracer t;
  runtime::TraceBuffer* a = t.track("rank 2");
  runtime::TraceBuffer* b = t.track("transport 2");
  a->begin_at("region", 0.25, 17);
  a->end_at("region", 0.50, 17);
  a->instant_at("steal_req", 0.6, 1, runtime::trace_corr(2, 3, 9));
  b->flow_start_at("frame", 0.7, runtime::trace_corr(2, 3, 4), 1);

  runtime::TraceSnapshot snap = runtime::snapshot_tracer(t);
  snap.rank = 2;
  snap.generation = 3;
  const std::string path = tmp_path("flight_roundtrip.bin");
  ASSERT_TRUE(runtime::save_trace_snapshot(snap, path));

  const auto back = runtime::load_trace_snapshot(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rank, 2u);
  EXPECT_EQ(back->generation, 3u);
  ASSERT_EQ(back->tracks.size(), 2u);
  EXPECT_EQ(back->tracks[0].name, "rank 2");
  EXPECT_EQ(back->tracks[1].name, "transport 2");
  ASSERT_EQ(back->tracks[0].events.size(), 3u);
  ASSERT_EQ(back->tracks[1].events.size(), 1u);
  const auto& ev = back->tracks[0].events[2];
  EXPECT_DOUBLE_EQ(ev.t, 0.6);
  EXPECT_EQ(ev.arg, 1u);
  EXPECT_EQ(ev.arg2, runtime::trace_corr(2, 3, 9));
  EXPECT_EQ(back->names.at(ev.name_ix), "steal_req");
  EXPECT_EQ(back->tracks[1].events[0].type, runtime::TraceType::kFlowStart);

  // A salvaged fragment must export as the same well-formed Chrome trace a
  // live rank writes.
  const std::string json_path = tmp_path("flight_roundtrip.json");
  ASSERT_TRUE(runtime::export_chrome_trace(*back, json_path));
  std::string text, err;
  Value root;
  ASSERT_TRUE(read_file(json_path, text));
  ASSERT_TRUE(json::parse(text, root, &err)) << err;
  EXPECT_TRUE(root.find("traceEvents"));
}

TEST(FlightRecorder, RejectsTruncationAndBitFlips) {
  runtime::Tracer t;
  runtime::TraceBuffer* a = t.track("rank 0");
  for (int i = 0; i < 64; ++i)
    a->instant_at("steal_req", 0.01 * i, static_cast<std::uint64_t>(i),
                  runtime::trace_corr(0, 0, static_cast<std::uint64_t>(i + 1)));
  runtime::TraceSnapshot snap = runtime::snapshot_tracer(t);
  const std::string path = tmp_path("flight_corrupt.bin");
  ASSERT_TRUE(runtime::save_trace_snapshot(snap, path));
  std::string bytes;
  ASSERT_TRUE(read_file(path, bytes));
  ASSERT_GT(bytes.size(), 8u);

  // Torn write (the crash the flight recorder exists for): reject.
  const std::string trunc = tmp_path("flight_trunc.bin");
  ASSERT_TRUE(write_file(trunc, bytes.substr(0, bytes.size() / 2)));
  EXPECT_FALSE(runtime::load_trace_snapshot(trunc).has_value());

  // Single flipped bit in the payload: checksum rejects, never misreads.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  const std::string flip = tmp_path("flight_flip.bin");
  ASSERT_TRUE(write_file(flip, flipped));
  EXPECT_FALSE(runtime::load_trace_snapshot(flip).has_value());

  // And the pristine file still loads (the two rejections above were the
  // corruption, not an API quirk).
  EXPECT_TRUE(runtime::load_trace_snapshot(path).has_value());
}

// ---------------------------------------------------------------------------
// ws_report on a synthetic merged timeline with known numbers.

TEST(WsReport, ComputesBusyCvAndFlowHistograms) {
  const std::string p0 = tmp_path("report.r0.g0.json");
  const std::string p1 = tmp_path("report.r1.g0.json");
  const std::uint32_t steal_corr = runtime::trace_corr(1, 0, 2);
  {
    runtime::Tracer t;
    runtime::TraceBuffer* b = t.track("rank 0");
    b->begin_at("region", 0.0, 1);
    b->end_at("region", 0.3, 1);  // 300 ms busy
    b->flow_end_at("steal", 0.35, steal_corr, 1);
    b->instant_at("grant", 0.36, 1, runtime::trace_corr(0, 0, 3));
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, p0, clock_json(0, 0, {"null", "0"})));
  }
  {
    runtime::Tracer t;
    runtime::TraceBuffer* b = t.track("rank 1");
    b->begin_at("region", 0.0, 2);
    b->end_at("region", 0.1, 2);  // 100 ms busy
    b->instant_at("steal_req", 0.1, 0, steal_corr);
    b->flow_start_at("steal", 0.1, steal_corr, 0);
    ASSERT_TRUE(runtime::export_chrome_trace(
        t, p1, clock_json(1, 0, {"0", "null"})));
  }
  std::vector<runtime::MergeInput> inputs;
  ASSERT_TRUE(load_input(p0, inputs));
  ASSERT_TRUE(load_input(p1, inputs));
  const runtime::MergeResult m = runtime::merge_traces(inputs);
  ASSERT_TRUE(m.ok) << m.error;
  Value merged;
  std::string err;
  ASSERT_TRUE(json::parse(m.json, merged, &err)) << err;

  const loadbal::WsReport r = loadbal::analyze_trace(merged, &err);
  ASSERT_TRUE(err.empty()) << err;
  ASSERT_EQ(r.ranks.size(), 2u);
  EXPECT_NEAR(r.ranks[0].busy_us, 300e3, 1.0);
  EXPECT_NEAR(r.ranks[1].busy_us, 100e3, 1.0);
  EXPECT_EQ(r.ranks[0].regions, 1u);
  EXPECT_EQ(r.ranks[1].steal_reqs, 1u);
  EXPECT_EQ(r.ranks[0].grants, 1u);
  // mean 200 ms, population stddev 100 ms -> CV 0.5.
  EXPECT_NEAR(r.busy_mean_us, 200e3, 1.0);
  EXPECT_NEAR(r.busy_cv, 0.5, 1e-6);
  // One completed steal flow, 250 ms latency -> log2 bucket 18
  // ([2^17, 2^18) us = [131, 262) ms).
  EXPECT_EQ(r.steal_flows, 1u);
  EXPECT_EQ(r.steal_latency_log2_us[18], 1u);
  EXPECT_EQ(r.grant_flows, 0u);

  const std::string j = loadbal::render_json(r);
  EXPECT_NE(j.find("\"schema\": \"pmpl-ws-report-1\""), std::string::npos);
  EXPECT_NE(loadbal::render_markdown(r).find("Busy-time CV"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end: a SIGKILLed rank's flight-recorder fragment is salvaged by
// the supervisor, merges with the survivors, and shows up in the report.

TEST(ClusterSalvage, SupervisorRecoversKilledIncarnationTrace) {
  const std::uint32_t p = 4;
  const std::uint64_t seed = 20260808;
  const auto work = loadbal::make_cluster_items(seed, 48, p);
  const std::string prefix = tmp_path("salvage_trace");
  // Stale exports from a previous run would make the supervisor believe
  // the killed rank exported live and skip the salvage.
  for (std::uint32_t r = 0; r < p; ++r)
    for (std::uint32_t g = 0; g < 3; ++g)
      std::remove((prefix + ".r" + std::to_string(r) + ".g" +
                   std::to_string(g) + ".json")
                      .c_str());

  // Fail-stop (no restart): the death is permanent, so heartbeat
  // detection, rehoming and the recovery latency are all deterministic —
  // a restarted replacement can rejoin before peers ever declare death.
  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.rank.run_timeout_s = 8.0;
  cfg.timeout_s = 60.0;
  cfg.trace_path = prefix;
  cfg.faults.seed = 3;
  cfg.faults.crash(1, 0.06);

  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  ASSERT_TRUE(real.killed[1]);
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);
  EXPECT_GT(real.deaths_detected, 0u);

  // The killed generation-0 incarnation never exported its trace; the
  // supervisor must have recovered it from the flight recorder.
  const std::string dead = prefix + ".r1.g0.json";
  ASSERT_EQ(real.traces_salvaged.size(), 1u);
  EXPECT_EQ(real.traces_salvaged[0], dead);

  std::string text, err;
  Value root;
  ASSERT_TRUE(read_file(dead, text));
  ASSERT_TRUE(json::parse(text, root, &err)) << err;
  const Value* clock = root.find("otherData")->find("clusterClock");
  ASSERT_NE(clock, nullptr);
  EXPECT_TRUE(clock->find("salvaged")->as_bool());
  EXPECT_EQ(clock->find("rank")->as_number(), 1.0);
  bool saw_salvage = false;
  for (const Value& ev : root.find("traceEvents")->as_array())
    if (ev.find("name")->is_string() &&
        ev.find("name")->as_string() == "salvage")
      saw_salvage = true;
  EXPECT_TRUE(saw_salvage) << "supervisor track missing its salvage marker";

  // Merge every incarnation on disk — the survivors' live exports plus
  // rank 1's salvaged fragment — and run the analyzer on it.
  std::vector<runtime::MergeInput> inputs;
  for (std::uint32_t r = 0; r < p; ++r)
    for (std::uint32_t g = 0; g < 3; ++g)
      load_input(prefix + ".r" + std::to_string(r) + ".g" + std::to_string(g) +
                     ".json",
                 inputs);
  ASSERT_GE(inputs.size(), p);  // all four ranks, one of them salvaged
  const runtime::MergeResult m = runtime::merge_traces(inputs);
  ASSERT_TRUE(m.ok) << m.error;
  Value merged;
  ASSERT_TRUE(json::parse(m.json, merged, &err)) << err;

  // Causality across processes: every completed frame flow must point
  // forward in merged time (small slack for clock-estimate error; the
  // bound is half the loopback round trip).
  std::map<std::string, double> send_ts, recv_ts;
  for (const Value& ev : merged.find("traceEvents")->as_array()) {
    const Value* ph = ev.find("ph");
    const Value* cat = ev.find("cat");
    if (!ph->is_string() || !cat || !cat->is_string() ||
        cat->as_string() != "frame")
      continue;
    const std::string id = ev.find("id")->as_string();
    if (ph->as_string() == "s") send_ts[id] = ev.find("ts")->as_number();
    if (ph->as_string() == "f") recv_ts[id] = ev.find("ts")->as_number();
  }
  std::size_t paired = 0;
  for (const auto& [id, ts] : recv_ts) {
    const auto it = send_ts.find(id);
    if (it == send_ts.end()) continue;  // sender's ring may have dropped it
    ++paired;
    // Slack: the offset estimate is off by at most half the hello round
    // trip, and that handshake runs during the fork storm — allow a
    // scheduler-hiccup-sized error, still far below real misalignment
    // (an unshifted clock domain is off by whole milliseconds * 100).
    EXPECT_GE(ts + 25000.0, it->second) << "frame flow " << id;
  }
  EXPECT_GT(paired, 0u);

  const loadbal::WsReport report = loadbal::analyze_trace(merged, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(report.ranks.size(), p);
  ASSERT_GE(report.salvages.size(), 1u);
  EXPECT_EQ(report.salvages[0].rank, 1u);
  EXPECT_EQ(report.salvages[0].generation, 0u);
  ASSERT_GE(report.deaths.size(), 1u);
  EXPECT_EQ(report.deaths[0].dead_rank, 1u);
  EXPECT_GT(report.window_us, 0.0);
  if (real.regions_recovered > 0) {
    ASSERT_GE(report.recoveries.size(), 1u);
    EXPECT_EQ(report.recoveries[0].dead_rank, 1u);
    EXPECT_GT(report.recoveries[0].regions, 0u);
  }
}
