// Tests for the transport layer and the sim-vs-real validation gate: the
// frame codec, fault-plan file validation, deterministic receiver-side
// frame faults, the in-process MemCluster transport, the per-rank
// protocol engine under clean and lossy links, the DES lossy-link
// retransmit soak over the acked grant ledger, and the forked-process
// SocketTransport gate (identical roadmap hashes vs the DES, SIGKILL
// recovery through real process death).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "loadbal/ws_cluster.hpp"
#include "loadbal/ws_engine.hpp"
#include "loadbal/ws_rank.hpp"
#include "runtime/fault_io.hpp"
#include "runtime/metrics_registry.hpp"
#include "runtime/transport.hpp"
#include "runtime/transport_mem.hpp"
#include "runtime/transport_socket.hpp"
#include "util/rng.hpp"

namespace pmpl {
namespace {

using runtime::Frame;
using runtime::FrameType;

// --- frame codec -------------------------------------------------------

Frame sample_frame() {
  Frame f;
  f.type = FrameType::kGrant;
  f.from = 3;
  f.to = 7;
  f.a = 0x1122334455667788ull;
  f.b = 42;
  f.c = ~0ull;
  f.items = {0, 1, 0xffffffffu, 12345};
  return f;
}

TEST(FrameCodec, RoundTrip) {
  const Frame f = sample_frame();
  std::vector<std::uint8_t> wire;
  runtime::encode_frame(f, wire);
  ASSERT_GE(wire.size(), 4u);
  // Length prefix covers exactly the payload.
  const std::uint32_t len = static_cast<std::uint32_t>(wire[0]) |
                            (static_cast<std::uint32_t>(wire[1]) << 8) |
                            (static_cast<std::uint32_t>(wire[2]) << 16) |
                            (static_cast<std::uint32_t>(wire[3]) << 24);
  ASSERT_EQ(len, wire.size() - 4);
  Frame g;
  ASSERT_TRUE(runtime::decode_frame_payload(wire.data() + 4, len, g));
  EXPECT_TRUE(f == g);
}

TEST(FrameCodec, EmptyItemsRoundTrip) {
  Frame f;
  f.type = FrameType::kHbProbe;
  f.from = 0;
  f.to = 1;
  std::vector<std::uint8_t> wire;
  runtime::encode_frame(f, wire);
  Frame g;
  ASSERT_TRUE(
      runtime::decode_frame_payload(wire.data() + 4, wire.size() - 4, g));
  EXPECT_TRUE(f == g);
}

TEST(FrameCodec, RejectsMalformedPayloads) {
  const Frame f = sample_frame();
  std::vector<std::uint8_t> wire;
  runtime::encode_frame(f, wire);
  Frame g;
  // Truncated payload.
  EXPECT_FALSE(runtime::decode_frame_payload(wire.data() + 4, 8, g));
  // Trailing garbage (size mismatch with the item count).
  std::vector<std::uint8_t> longer(wire.begin() + 4, wire.end());
  longer.push_back(0);
  EXPECT_FALSE(
      runtime::decode_frame_payload(longer.data(), longer.size(), g));
  // Unknown frame type.
  std::vector<std::uint8_t> bad_type(wire.begin() + 4, wire.end());
  bad_type[0] = 0xee;
  EXPECT_FALSE(
      runtime::decode_frame_payload(bad_type.data(), bad_type.size(), g));
  // Item count pointing past the buffer (count sits after the 45 bytes of
  // type/from/to/gen/a/b/c/seq).
  std::vector<std::uint8_t> bad_count(wire.begin() + 4, wire.end());
  bad_count[45] = 0xff;
  bad_count[46] = 0xff;
  EXPECT_FALSE(
      runtime::decode_frame_payload(bad_count.data(), bad_count.size(), g));
}

// Seeded deterministic fuzz of the wire codec: random valid frames must
// round-trip bit-exactly; truncations, bit flips and item-count bombs must
// be rejected (or decode to a frame that re-encodes within bounds) without
// reading out of bounds — the CI sanitizer job is the oracle for that.
// tests/fuzz_wire.cpp runs the same surface coverage-guided (PMPL_FUZZ).
TEST(FrameCodecFuzz, RandomFramesRoundTripAndMutationsAreRejectedCleanly) {
  Xoshiro256ss rng(0xf0225eedULL);
  std::vector<std::uint8_t> wire;
  for (int iter = 0; iter < 2000; ++iter) {
    Frame f;
    f.type = static_cast<FrameType>(rng.uniform_u64(
        static_cast<std::uint64_t>(FrameType::kEpochFence) + 1));
    f.from = static_cast<std::uint32_t>(rng());
    f.to = static_cast<std::uint32_t>(rng());
    f.gen = static_cast<std::uint32_t>(rng());
    f.a = rng();
    f.b = rng();
    f.c = rng();
    f.seq = rng();
    f.items.resize(rng.uniform_u64(17));
    for (auto& item : f.items) item = static_cast<std::uint32_t>(rng());

    wire.clear();
    runtime::encode_frame(f, wire);
    Frame g;
    ASSERT_TRUE(
        runtime::decode_frame_payload(wire.data() + 4, wire.size() - 4, g));
    ASSERT_TRUE(f == g);

    // Truncation at every boundary class is a clean reject.
    const std::size_t cut = rng.uniform_u64(wire.size() - 4);
    EXPECT_FALSE(runtime::decode_frame_payload(wire.data() + 4, cut, g));

    // One random bit flip: decode may succeed (a flipped scalar is still a
    // well-formed frame) but must never read past the buffer or accept a
    // length that disagrees with the item count.
    std::vector<std::uint8_t> mut(wire.begin() + 4, wire.end());
    mut[rng.uniform_u64(mut.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_u64(8));
    Frame h;
    if (runtime::decode_frame_payload(mut.data(), mut.size(), h)) {
      EXPECT_EQ(runtime::frame_payload_size(h), mut.size());
    }
  }

  // Length bomb: a count field claiming ~4 billion items must be rejected
  // by the kMaxFrameItems bound, not by attempting the allocation.
  Frame f = sample_frame();
  wire.clear();
  runtime::encode_frame(f, wire);
  std::vector<std::uint8_t> bomb(wire.begin() + 4, wire.end());
  for (int b = 0; b < 4; ++b) bomb[45 + b] = 0xff;
  Frame g;
  EXPECT_FALSE(runtime::decode_frame_payload(bomb.data(), bomb.size(), g));
}

// Same treatment for the fault-plan JSON parser: mutations of a valid
// document and raw garbage must produce a clean (false, diagnostic) result,
// never a crash or an accepted half-parsed plan with the error set.
TEST(FaultIoFuzz, MutatedPlansParseOrRejectCleanly) {
  runtime::FaultPlan seed_plan;
  seed_plan.crash(1, 0.3);
  seed_plan.straggler(0, 2.0, 0.0, 1.0);
  seed_plan.lossy_links(0.25, 1e-4, 0.1, 0.8);
  seed_plan.lose_tokens(0.5);
  seed_plan.pause(2, 0.2, 0.6);
  seed_plan.partition({0, 1}, 0.1, 0.5);
  const std::string base = runtime::fault_plan_to_json(seed_plan);

  Xoshiro256ss rng(0xfa1117ULL);
  for (int iter = 0; iter < 1500; ++iter) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = rng.uniform_u64(text.size());
      switch (rng.uniform_u64(3)) {
        case 0:  // flip a byte to a random printable
          text[at] = static_cast<char>(0x20 + rng.uniform_u64(95));
          break;
        case 1:  // truncate
          text.resize(at);
          break;
        default:  // duplicate a slice (nesting bombs, repeated keys)
          text.insert(at, text.substr(at / 2, rng.uniform_u64(24)));
          break;
      }
      if (text.empty()) break;
    }
    runtime::FaultPlan plan;
    std::string err;
    const bool ok = runtime::parse_fault_plan(text, plan, err);
    // The contract: rejection always carries a diagnostic; acceptance
    // always yields in-range probabilities and ordered windows.
    if (!ok) {
      EXPECT_FALSE(err.empty());
    } else {
      for (const auto& l : plan.links) {
        EXPECT_GE(l.drop_prob, 0.0);
        EXPECT_LE(l.drop_prob, 1.0);
        EXPECT_LE(l.from_s, l.until_s);
      }
      for (const auto& t : plan.tokens) {
        EXPECT_GE(t.drop_prob, 0.0);
        EXPECT_LE(t.drop_prob, 1.0);
      }
      for (const auto& p : plan.pauses) EXPECT_LE(p.from_s, p.until_s);
      for (const auto& p : plan.partitions) {
        EXPECT_FALSE(p.ranks.empty());
        EXPECT_LE(p.from_s, p.until_s);
      }
    }
  }
}

// --- fault-plan files --------------------------------------------------

TEST(FaultIo, ParsesFullPlan) {
  const std::string text = R"({
    "seed": 77,
    "crashes": [{"rank": 2, "at_s": 0.5}],
    "stragglers": [{"rank": 1, "slowdown": 4.0, "from_s": 0.0,
                    "until_s": 2.0}],
    "links": [{"from": "any", "to": 3, "drop_prob": 0.25,
               "extra_delay_s": 1e-4, "from_s": 0.1, "until_s": 0.9}],
    "tokens": [{"drop_prob": 0.5}],
    "pauses": [{"rank": 0, "from_s": 0.2, "until_s": 0.7}],
    "partitions": [{"ranks": [0, 2], "from_s": 0.1, "until_s": 0.4}]
  })";
  runtime::FaultPlan plan;
  std::string err;
  ASSERT_TRUE(runtime::parse_fault_plan(text, plan, err)) << err;
  EXPECT_EQ(plan.seed, 77u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 2u);
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.links[0].from, runtime::kAnyRank);
  EXPECT_EQ(plan.links[0].to, 3u);
  EXPECT_DOUBLE_EQ(plan.links[0].drop_prob, 0.25);
  ASSERT_EQ(plan.tokens.size(), 1u);
  ASSERT_EQ(plan.pauses.size(), 1u);
  EXPECT_EQ(plan.pauses[0].rank, 0u);
  EXPECT_DOUBLE_EQ(plan.pauses[0].until_s, 0.7);
  ASSERT_EQ(plan.partitions.size(), 1u);
  ASSERT_EQ(plan.partitions[0].ranks.size(), 2u);
  EXPECT_TRUE(plan.partitions[0].separates(0, 1));
  EXPECT_FALSE(plan.partitions[0].separates(0, 2));
}

TEST(FaultIo, RejectionsNameTheOffendingField) {
  runtime::FaultPlan plan;
  std::string err;
  // Typoed key.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"links": [{"to": 1, "drop_porb": 0.5}]})", plan, err));
  EXPECT_NE(err.find("drop_porb"), std::string::npos) << err;
  // Out-of-range probability.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"links": [{"to": 1, "drop_prob": 1.5}]})", plan, err));
  EXPECT_NE(err.find("drop_prob"), std::string::npos) << err;
  // Inverted window.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"tokens": [{"drop_prob": 0.1, "from_s": 2.0, "until_s": 1.0}]})",
      plan, err));
  EXPECT_NE(err.find("until_s"), std::string::npos) << err;
  // Crash without a rank.
  EXPECT_FALSE(
      runtime::parse_fault_plan(R"({"crashes": [{"at_s": 1.0}]})", plan, err));
  EXPECT_NE(err.find("rank"), std::string::npos) << err;
  // Pause without a rank.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"pauses": [{"from_s": 0.1, "until_s": 0.2}]})", plan, err));
  EXPECT_NE(err.find("pauses[0].rank"), std::string::npos) << err;
  // Pause with an inverted window.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"pauses": [{"rank": 1, "from_s": 2.0, "until_s": 1.0}]})", plan,
      err));
  EXPECT_NE(err.find("until_s"), std::string::npos) << err;
  // Partition with an empty side.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"partitions": [{"ranks": [], "from_s": 0.0, "until_s": 1.0}]})",
      plan, err));
  EXPECT_NE(err.find("partitions[0].ranks"), std::string::npos) << err;
  // Partition with a fractional rank.
  EXPECT_FALSE(runtime::parse_fault_plan(
      R"({"partitions": [{"ranks": [0.5], "until_s": 1.0}]})", plan, err));
  EXPECT_NE(err.find("partitions[0].ranks[0]"), std::string::npos) << err;
  // Not JSON at all.
  EXPECT_FALSE(runtime::parse_fault_plan("not json", plan, err));
  EXPECT_FALSE(err.empty());
}

TEST(FaultIo, SerializationRoundTrips) {
  runtime::FaultPlan plan;
  plan.seed = 9;
  plan.crash(1, 0.25);
  plan.straggler(2, 3.0, 0.0, 1.5);
  plan.lossy_links(0.2);
  plan.lose_tokens(0.1);
  plan.pause(3, 0.4, 0.9);
  plan.partition({1, 3}, 0.2, 0.6);
  runtime::FaultPlan back;
  std::string err;
  ASSERT_TRUE(
      runtime::parse_fault_plan(runtime::fault_plan_to_json(plan), back, err))
      << err;
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.crashes.size(), 1u);
  ASSERT_EQ(back.links.size(), 1u);
  EXPECT_EQ(back.links[0].from, runtime::kAnyRank);
  EXPECT_DOUBLE_EQ(back.links[0].drop_prob, 0.2);
  ASSERT_EQ(back.tokens.size(), 1u);
  ASSERT_EQ(back.pauses.size(), 1u);
  EXPECT_EQ(back.pauses[0].rank, 3u);
  EXPECT_DOUBLE_EQ(back.pauses[0].from_s, 0.4);
  ASSERT_EQ(back.partitions.size(), 1u);
  EXPECT_EQ(back.partitions[0].ranks, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_DOUBLE_EQ(back.partitions[0].until_s, 0.6);
}

TEST(FaultIo, ScaledPlanMapsTimesOntoWallClock) {
  runtime::FaultPlan plan;
  plan.crash(0, 2.0);
  plan.lossy_links(0.5);  // infinite window
  plan.links[0].from_s = 1.0;
  plan.links[0].extra_delay_s = 0.25;
  const auto scaled = runtime::scaled_fault_plan(plan, 0.5);
  EXPECT_DOUBLE_EQ(scaled.crashes[0].at_s, 1.0);
  EXPECT_DOUBLE_EQ(scaled.links[0].from_s, 0.5);
  EXPECT_DOUBLE_EQ(scaled.links[0].extra_delay_s, 0.125);
  EXPECT_TRUE(std::isinf(scaled.links[0].until_s));
  EXPECT_DOUBLE_EQ(scaled.links[0].drop_prob, 0.5);  // untouched
}

// --- deterministic receiver-side faults --------------------------------

TEST(FrameFaults, FateIsDeterministicPerArrival) {
  runtime::FaultPlan plan;
  plan.seed = 1234;
  plan.lossy_links(0.5);
  const runtime::FrameFaults a(plan);
  const runtime::FrameFaults b(plan);
  int dropped = 0;
  for (std::uint64_t seq = 0; seq < 400; ++seq) {
    const auto fa = a.on_frame(0, 1, seq, 0.0, false);
    const auto fb = b.on_frame(0, 1, seq, 0.0, false);
    EXPECT_EQ(fa.dropped, fb.dropped);
    if (fa.dropped) ++dropped;
  }
  // ~50% drop rate, deterministic: bounds are exact for this seed.
  EXPECT_GT(dropped, 120);
  EXPECT_LT(dropped, 280);
}

TEST(FrameFaults, WindowsCutAgainstTransportTime) {
  runtime::FaultPlan plan;
  plan.seed = 7;
  plan.links.push_back({runtime::kAnyRank,
                        runtime::kAnyRank, 1.0, 0.0, 1.0, 2.0});
  const runtime::FrameFaults f(plan);
  EXPECT_FALSE(f.on_frame(0, 1, 0, 0.5, false).dropped);  // before window
  EXPECT_TRUE(f.on_frame(0, 1, 1, 1.5, false).dropped);   // inside
  EXPECT_FALSE(f.on_frame(0, 1, 2, 2.5, false).dropped);  // after
}

// --- MemCluster transport ---------------------------------------------

TEST(MemTransport, PingPong) {
  runtime::MemCluster cluster(2);
  auto& a = cluster.endpoint(0);
  auto& b = cluster.endpoint(1);
  std::thread peer([&] {
    Frame f;
    ASSERT_TRUE(b.recv(f, 2.0));
    EXPECT_EQ(f.type, FrameType::kStealRequest);
    EXPECT_EQ(f.from, 0u);
    Frame r;
    r.type = FrameType::kDeny;
    r.from = 1;
    r.to = 0;
    r.a = f.a;
    EXPECT_TRUE(b.send(0, r));
  });
  Frame f;
  f.type = FrameType::kStealRequest;
  f.from = 0;
  f.to = 1;
  f.a = 99;
  ASSERT_TRUE(a.send(1, f));
  Frame got;
  ASSERT_TRUE(a.recv(got, 2.0));
  EXPECT_EQ(got.type, FrameType::kDeny);
  EXPECT_EQ(got.a, 99u);
  peer.join();
  EXPECT_EQ(a.metrics().frames_sent, 1u);
  EXPECT_EQ(a.metrics().frames_received, 1u);
}

TEST(MemTransport, DroppedFramesLookDeliveredToTheSender) {
  runtime::FaultPlan plan;
  plan.seed = 3;
  plan.lossy_links(1.0);  // drop everything
  runtime::MemCluster cluster(2, plan);
  Frame f;
  f.type = FrameType::kHbProbe;
  f.from = 0;
  f.to = 1;
  EXPECT_TRUE(cluster.endpoint(0).send(1, f));
  Frame got;
  EXPECT_FALSE(cluster.endpoint(1).recv(got, 0.05));
  EXPECT_EQ(cluster.endpoint(1).metrics().frames_dropped, 1u);
}

// --- the per-rank engine over MemTransport ------------------------------

struct MemRun {
  std::vector<loadbal::WsRankResult> ranks;
  std::vector<bool> done;
  std::uint64_t executed = 0;
};

MemRun run_mem_cluster(std::uint32_t p, std::uint32_t n, std::uint64_t seed,
                       const runtime::FaultPlan& faults = {}) {
  const auto work = loadbal::make_cluster_items(seed, n, p);
  runtime::MemCluster cluster(p, faults);
  std::vector<loadbal::WsRankResult> results(p);
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < p; ++r)
    threads.emplace_back([&, r] {
      loadbal::WsRankConfig cfg;
      cfg.items = work.items;
      cfg.initial = work.initial;
      cfg.seed = seed;
      cfg.run_timeout_s = 30.0;
      results[r] = run_ws_rank(cluster.endpoint(r), cfg);
    });
  for (auto& t : threads) t.join();
  MemRun out;
  out.done.assign(n, false);
  for (const auto& r : results) {
    out.executed += r.executed.size();
    for (std::size_t i = 0; i < r.done.size(); ++i)
      if (r.done[i]) out.done[i] = true;
  }
  out.ranks = std::move(results);
  return out;
}

TEST(WsRank, TerminatesAndCompletesEverythingFaultFree) {
  const std::uint32_t n = 24;
  const auto run = run_mem_cluster(3, n, 5);
  std::uint64_t local = 0, stolen = 0;
  for (const auto& r : run.ranks) {
    EXPECT_TRUE(r.terminated) << "rank " << r.rank;
    EXPECT_FALSE(r.fenced);
    local += r.local_tasks;
    stolen += r.stolen_tasks;
  }
  // Conservation: every region executed exactly once, nothing twice.
  EXPECT_EQ(local + stolen, n);
  EXPECT_EQ(run.executed, n);
  EXPECT_GT(stolen, 0u);  // the front-loaded assignment forces stealing
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_TRUE(run.done[i]) << i;
}

TEST(WsRank, SurvivesLossyLinksWithRetransmit) {
  runtime::FaultPlan plan;
  plan.seed = 21;
  plan.lossy_links(0.3);
  plan.links[0].until_s = 1.0;  // transient: closes before the backstop
  plan.lose_tokens(0.3);
  plan.tokens[0].until_s = 1.0;
  const std::uint32_t n = 24;
  const auto run = run_mem_cluster(3, n, 9, plan);
  std::uint64_t executed_once = 0;
  for (const auto& r : run.ranks) {
    EXPECT_TRUE(r.terminated) << "rank " << r.rank;
    executed_once += r.local_tasks + r.stolen_tasks;
  }
  // Grant dedup under retransmit: nothing double-applied, nothing lost.
  EXPECT_EQ(executed_once, n);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_TRUE(run.done[i]) << i;
}

TEST(WsRank, PublishesProtocolHealthMetrics) {
  const auto run = run_mem_cluster(2, 12, 13);
  runtime::MetricsRegistry reg;
  publish(reg, run.ranks[0], "rank0/");
  EXPECT_GT(reg.counter("rank0/transport_frames_sent").value(), 0u);
  EXPECT_EQ(reg.counter("rank0/steal_requests").value(),
            run.ranks[0].steal_requests);
  // Counters the fault scenarios rely on exist even when zero here.
  EXPECT_EQ(reg.counter("rank0/grant_retransmits").value(),
            run.ranks[0].grant_retransmits);
  EXPECT_EQ(reg.counter("rank0/transport_reconnects").value(), 0u);
}

// --- satellite: DES lossy-link retransmit soak --------------------------

TEST(LossySoak, AckedGrantLedgerSurvivesDropSweep) {
  const std::uint32_t p = 8, n = 96;
  const auto work = loadbal::make_cluster_items(31, n, p);
  for (const double drop : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    loadbal::WsConfig cfg;
    cfg.seed = 31;
    cfg.rand_k = 2;
    if (drop > 0.0) {
      cfg.faults.seed = 1000 + static_cast<std::uint64_t>(drop * 100);
      cfg.faults.lossy_links(drop);
      cfg.faults.lose_tokens(drop);
    }
    const auto r =
        loadbal::simulate_work_stealing(work.items, work.initial, p, cfg);
    ASSERT_TRUE(r.terminated) << "drop=" << drop;
    ASSERT_FALSE(r.hit_event_limit) << "drop=" << drop;
    // No region orphaned: everything completed...
    for (std::uint32_t i = 0; i < n; ++i)
      ASSERT_GE(r.completion_s[i], 0.0) << "drop=" << drop << " region " << i;
    // ...and no grant double-applied: without crashes a re-executed
    // region could only come from a duplicated grant.
    EXPECT_EQ(r.faults.regions_reexecuted, 0u) << "drop=" << drop;
    std::uint64_t executed = 0;
    for (std::size_t l = 0; l < p; ++l)
      executed += r.local_tasks[l] + r.stolen_tasks[l];
    EXPECT_EQ(executed, n) << "drop=" << drop;
    if (drop >= 0.3) {
      EXPECT_GT(r.faults.grant_retransmits, 0u);
    }
  }
}

// --- the sim-vs-real gate (forked processes, real sockets) --------------

TEST(TransportGate, FaultFreeRoadmapMatchesDes) {
  const std::uint32_t p = 3, n = 32;
  const std::uint64_t seed = 7;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.timeout_s = 60.0;
  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  EXPECT_TRUE(real.terminated_all);
  EXPECT_TRUE(real.all_done);

  loadbal::WsConfig wcfg;
  wcfg.seed = seed;
  wcfg.rand_k = 2;
  const auto des =
      loadbal::simulate_work_stealing(work.items, work.initial, p, wcfg);
  ASSERT_TRUE(des.terminated);
  const auto des_hash =
      loadbal::roadmap_hash(seed, loadbal::completed_set(des));
  EXPECT_EQ(des_hash, real.roadmap);
  // Equivalent protocol activity, not identical schedules: both must
  // have actually stolen work off the front-loaded rank.
  EXPECT_GT(real.steal_grants, 0u);
  EXPECT_GT(des.steal_grants, 0u);
}

TEST(TransportGate, SigkillDuringStealRecoversAndTerminates) {
  const std::uint32_t p = 3, n = 36;
  const std::uint64_t seed = 7;
  const auto work = loadbal::make_cluster_items(seed, n, p);

  loadbal::ClusterConfig cfg;
  cfg.ranks = p;
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.seed = seed;
  cfg.timeout_s = 60.0;
  // Rank 0 owns half the regions and is the steal victim for everyone:
  // SIGKILL it while grants are in flight.
  cfg.faults.seed = 99;
  cfg.faults.crash(0, 0.08);
  const auto real = loadbal::run_ws_cluster(cfg);
  ASSERT_TRUE(real.ok) << real.error;
  EXPECT_TRUE(real.killed[0]);
  EXPECT_TRUE(real.terminated_all);
  // Every region the dead rank still owned was re-homed and executed.
  EXPECT_TRUE(real.all_done);
  EXPECT_GT(real.regions_recovered, 0u);
  EXPECT_GT(real.deaths_detected, 0u);
  // The roadmap is the same one the DES produces under any schedule:
  // completion is all-regions, and payloads are schedule-independent.
  loadbal::WsConfig wcfg;
  wcfg.seed = seed;
  wcfg.rand_k = 2;
  const auto des =
      loadbal::simulate_work_stealing(work.items, work.initial, p, wcfg);
  EXPECT_EQ(loadbal::roadmap_hash(seed, loadbal::completed_set(des)),
            real.roadmap);
}

// --- socket transport basics (two ranks, two threads, one process) ------

TEST(SocketTransport, MeshDeliversAndCounts) {
  char tmpl[] = "/tmp/pmpl_sock_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  auto make = [&](std::uint32_t r) {
    runtime::SocketTransportConfig c;
    c.rank = r;
    c.size = 2;
    c.dir = dir;
    c.connect_timeout_s = 5.0;
    c.accept_timeout_s = 5.0;
    return c;
  };
  runtime::SocketTransport t0(make(0));
  runtime::SocketTransport t1(make(1));
  std::string e0, e1;
  bool ok0 = false, ok1 = false;
  std::thread a([&] { ok0 = t0.start(&e0); });
  std::thread b([&] { ok1 = t1.start(&e1); });
  a.join();
  b.join();
  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;

  Frame f;
  f.type = FrameType::kGrant;
  f.from = 0;
  f.to = 1;
  f.a = 5;
  f.items = {1, 2, 3};
  ASSERT_TRUE(t0.send(1, f));
  Frame got;
  ASSERT_TRUE(t1.recv(got, 2.0));
  // The transport stamps the wire trace id on every transmission; the
  // protocol fields must arrive untouched.
  EXPECT_NE(got.seq, 0u);
  got.seq = f.seq;
  EXPECT_TRUE(got == f);
  EXPECT_EQ(t0.metrics().frames_sent, 1u);
  EXPECT_EQ(t1.metrics().frames_received, 1u);
  EXPECT_GE(t1.metrics().bytes_received, 4u + 49u + 12u);
  t0.close();
  t1.close();
  ::rmdir(dir.c_str());
}

// A rejoiner (dial_all) reviving into a mesh that already finished and
// exited must not spend the full connect budget on every corpse: launch
// runs before the engine's inactivity backstop arms, so with the default
// 10s budget a 4-rank revival would stall ~30s in dial() backoff — only
// the cluster watchdog would end it. The dial_all path caps each peer at
// a fast-fail budget instead (a live peer's listener accepts instantly),
// and unreachable peers are tolerated, not startup failures.
TEST(SocketTransport, RejoinerFastFailsDeadPeersAtLaunch) {
  char tmpl[] = "/tmp/pmpl_sock_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  runtime::SocketTransportConfig c;
  c.rank = 1;
  c.size = 4;
  c.dir = dir;
  c.dial_all = true;
  c.generation = 1;
  c.connect_timeout_s = 10.0;  // the budget a first launch would get
  runtime::SocketTransport t(c);
  std::string err;
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = t.start(&err);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Dead peers are tolerated on a rejoin launch...
  EXPECT_TRUE(ok) << err;
  // ...and cost a fraction of a second each, not connect_timeout_s
  // (pre-fix this took 3 x 10s; the bound leaves headroom for ASan/CI).
  EXPECT_LT(elapsed, 5.0);
  t.close();
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace pmpl
