// Tests for util/: rng, inline_vector, stats, timer, args, table.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/args.hpp"
#include "util/inline_vector.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pmpl {
namespace {

// --- rng --------------------------------------------------------------

TEST(Rng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, DeriveSeedDistinctPerStream) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 10000; ++id)
    seeds.insert(derive_seed(123, id));
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(Rng, DeriveSeedDependsOnGlobalSeed) {
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));
}

TEST(Rng, SameSeedSameStream) {
  Xoshiro256ss a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256ss rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversRangeUnbiased) {
  Xoshiro256ss rng(13);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 100);
}

TEST(Rng, UniformU64EdgeCases) {
  Xoshiro256ss rng(17);
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, NormalHasUnitVariance) {
  Xoshiro256ss rng(19);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

// --- inline_vector ----------------------------------------------------

TEST(InlineVector, StartsEmpty) {
  InlineVector<double, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(InlineVector, PushPopBack) {
  InlineVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.back(), 1);
}

TEST(InlineVector, InitializerList) {
  InlineVector<int, 8> v{1, 2, 3};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(InlineVector, CountConstructor) {
  InlineVector<double, 8> v(5, 2.5);
  EXPECT_EQ(v.size(), 5u);
  for (double x : v) EXPECT_EQ(x, 2.5);
}

TEST(InlineVector, ResizeGrowsWithFill) {
  InlineVector<int, 8> v{1};
  v.resize(4, 9);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 9);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(InlineVector, Equality) {
  InlineVector<int, 4> a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(InlineVector, IterationMatchesIndexing) {
  InlineVector<int, 8> v{4, 5, 6};
  std::size_t i = 0;
  for (int x : v) EXPECT_EQ(x, v[i++]);
  EXPECT_EQ(i, v.size());
}

TEST(InlineVector, FullDetection) {
  InlineVector<int, 2> v{1, 2};
  EXPECT_TRUE(v.full());
}

// --- stats ------------------------------------------------------------

TEST(Stats, EmptySummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(Stats, SingleValue) {
  const std::vector<double> v{5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(Stats, KnownDistribution) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_NEAR(s.mean, 5.0, 1e-12);
  EXPECT_NEAR(s.stddev, 2.0, 1e-12);  // classic population-stddev example
  EXPECT_NEAR(s.cv(), 0.4, 1e-12);
}

TEST(Stats, UniformLoadHasZeroCv) {
  const std::vector<double> v(64, 3.25);
  EXPECT_EQ(summarize(v).cv(), 0.0);
  EXPECT_NEAR(summarize(v).imbalance(), 1.0, 1e-12);
}

TEST(Stats, ImbalanceIsMaxOverMean) {
  const std::vector<double> v{1.0, 1.0, 4.0};
  EXPECT_NEAR(summarize(v).imbalance(), 2.0, 1e-12);
}

TEST(Stats, SumAccumulates) {
  const std::vector<double> v{1.5, 2.5, 3.0};
  EXPECT_NEAR(summarize(v).sum, 7.0, 1e-12);
}

// --- timer ------------------------------------------------------------

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  WallTimer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, AccumTimerSumsIntervals) {
  AccumTimer t;
  t.start();
  t.stop();
  t.start();
  t.stop();
  EXPECT_GE(t.total_s(), 0.0);
  t.reset();
  EXPECT_EQ(t.total_s(), 0.0);
}

// --- args -------------------------------------------------------------

TEST(Args, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--procs", "64", "--env=med-cube", "--full"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_i64("procs", 0), 64);
  EXPECT_EQ(args.get("env", ""), "med-cube");
  EXPECT_TRUE(args.get_bool("full"));
  EXPECT_FALSE(args.get_bool("absent"));
}

TEST(Args, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_i64("n", 77), 77);
  EXPECT_DOUBLE_EQ(args.get_f64("x", 1.5), 1.5);
  EXPECT_EQ(args.get("s", "dflt"), "dflt");
}

TEST(Args, FloatParsing) {
  const char* argv[] = {"prog", "--scale=2.5"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_f64("scale", 0.0), 2.5);
}

// --- table ------------------------------------------------------------

TEST(Table, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").num(1.5, 1);
  t.row().cell("b").num(std::size_t{42});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

}  // namespace
}  // namespace pmpl
