// pland — planning-as-a-service demo daemon.
//
// Stands up the long-lived query engine over a snapshot pool, drives it
// with a synthetic query load (optionally while a background publisher
// keeps densifying the roadmap), and reports serving statistics. The
// closest thing the repo has to running the planner as a service without
// a network frontend:
//
//   $ pland --env maze --attempts 6000 --queries 200 --workers 4 \
//           --deadline-ms 100 --churn --metrics pland_metrics.json \
//           --trace pland.trace.json
//
// Options:
//   --env NAME         maze | warehouse          (default maze)
//   --attempts N       PRM build attempts        (default 6000)
//   --queries N        queries to serve          (default 100)
//   --wave N           queries per engine batch  (default 16)
//   --workers N        engine A* workers         (default 4)
//   --deadline-ms D    per-query budget, 0 = none (default 0)
//   --churn            publish new epochs while serving
//   --seed S           RNG seed                  (default 7)
//   --metrics FILE     write the MetricsRegistry snapshot as JSON
//   --trace FILE       write a Perfetto-loadable trace with one flow
//                      arrow per query (admission -> A* worker)
//
// Exit status: 0 when every wave served and (if solvable) at least one
// query solved; 1 on setup failure.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/builders.hpp"
#include "planner/prm.hpp"
#include "service/query_engine.hpp"
#include "service/snapshot.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace pmpl;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string env_name = args.get("env", "maze");
  const auto attempts =
      static_cast<std::size_t>(args.get_i64("attempts", 6000, 1));
  const auto queries =
      static_cast<std::size_t>(args.get_i64("queries", 100, 1));
  const auto wave = static_cast<std::size_t>(args.get_i64("wave", 16, 1));
  const auto workers =
      static_cast<std::size_t>(args.get_i64("workers", 4, 1));
  const double deadline_ms = args.get_f64("deadline-ms", 0.0);
  const bool churn = args.has("churn");
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 7));
  const std::string metrics_path = args.get("metrics", "");
  const std::string trace_path = args.get("trace", "");

  std::unique_ptr<env::Environment> e;
  if (env_name == "maze") {
    e = env::maze_2d();
  } else if (env_name == "warehouse") {
    e = env::warehouse();
  } else {
    std::fprintf(stderr, "pland: unknown --env '%s' (maze | warehouse)\n",
                 env_name.c_str());
    return 1;
  }

  planner::PrmParams params;
  params.k_neighbors = 8;
  params.resolution = env_name == "maze" ? 0.5 : 1.0;

  // Epoch 1: the initial roadmap.
  WallTimer build_timer;
  planner::Prm prm(*e, params);
  prm.build(attempts, seed);
  service::SnapshotPool pool;
  pool.publish(prm.roadmap());
  std::printf("pland: %s epoch 1 published — %zu vertices, %zu edges "
              "(built in %.2fs)\n",
              env_name.c_str(), prm.roadmap().num_vertices(),
              prm.roadmap().num_edges(), build_timer.elapsed_s());

  runtime::MetricsRegistry metrics;
  std::unique_ptr<runtime::Tracer> tracer;
  if (!trace_path.empty()) tracer = std::make_unique<runtime::Tracer>();

  service::QueryEngineConfig cfg;
  cfg.workers = workers;
  cfg.resolution = params.resolution;
  cfg.metrics = &metrics;
  cfg.tracer = tracer.get();
  service::QueryEngine engine(*e, pool, cfg);

  // Optional background publisher: keeps retiring the served epoch under
  // live traffic (the engine pins each wave's snapshot; retired epochs
  // reclaim when their last wave finishes).
  std::atomic<bool> stop{false};
  std::thread publisher;
  if (churn)
    publisher = std::thread([&] {
      std::uint64_t pseed = seed + 1000;
      while (!stop.load(std::memory_order_acquire))
        service::densify_and_publish(pool, *e, params, attempts / 20,
                                     pseed++);
    });

  // Synthetic load: random valid start/goal pairs.
  Xoshiro256ss rng(seed + 1);
  const auto draw_free = [&](cspace::Config& c) {
    for (int tries = 0; tries < 500; ++tries) {
      c = e->space().sample(rng);
      if (e->validity().valid(c)) return true;
    }
    return false;
  };

  std::size_t submitted = 0, solved = 0, missed = 0, unreachable = 0;
  std::uint64_t first_epoch = 0, last_epoch = 0;
  WallTimer serve_timer;
  while (submitted < queries) {
    const std::size_t n = std::min(wave, queries - submitted);
    for (std::size_t i = 0; i < n; ++i) {
      service::QueryRequest q;
      if (!draw_free(q.start) || !draw_free(q.goal)) continue;
      q.k = params.k_neighbors;
      if (deadline_ms > 0.0)
        q.deadline = runtime::Deadline::after_ms(deadline_ms);
      engine.submit(std::move(q));
      ++submitted;
    }
    for (const auto& [id, r] : engine.drain()) {
      (void)id;
      if (first_epoch == 0) first_epoch = r.epoch;
      last_epoch = std::max(last_epoch, r.epoch);
      switch (r.status) {
        case service::QueryStatus::kSolved:
          ++solved;
          if (r.degraded) ++missed;  // late delivery
          break;
        case service::QueryStatus::kDeadlineMiss:
          ++missed;
          break;
        case service::QueryStatus::kUnreachable:
          ++unreachable;
          break;
        default:
          break;
      }
    }
  }
  const double serve_s = serve_timer.elapsed_s();
  if (churn) {
    stop.store(true, std::memory_order_release);
    publisher.join();
  }
  engine.publish_pool_metrics();

  const auto lat = engine.latency();
  TextTable table({"served", "solved", "unreachable", "deadline missed",
                   "qps", "p50 us", "p99 us", "p999 us"});
  table.row()
      .num(static_cast<std::uint64_t>(submitted))
      .num(static_cast<std::uint64_t>(solved))
      .num(static_cast<std::uint64_t>(unreachable))
      .num(static_cast<std::uint64_t>(missed))
      .num(static_cast<double>(submitted) / serve_s, 1)
      .num(lat.p50_us, 0)
      .num(lat.p99_us, 0)
      .num(lat.p999_us, 0);
  table.print();
  std::printf("epochs served: %llu..%llu (published %llu, reclaimed %llu, "
              "resident %llu)\n",
              static_cast<unsigned long long>(first_epoch),
              static_cast<unsigned long long>(last_epoch),
              static_cast<unsigned long long>(pool.published_total()),
              static_cast<unsigned long long>(pool.reclaimed_total()),
              static_cast<unsigned long long>(pool.live_slots()));

  if (!metrics_path.empty()) {
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", metrics.to_json().c_str());
      std::fclose(f);
      std::printf("metrics -> %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "pland: cannot write %s\n", metrics_path.c_str());
    }
  }
  if (tracer) {
    if (runtime::export_chrome_trace(*tracer, trace_path))
      std::printf("trace -> %s (load in Perfetto; category \"query\" "
                  "carries one flow arrow per query)\n",
                  trace_path.c_str());
    else
      std::fprintf(stderr, "pland: cannot write %s\n", trace_path.c_str());
  }
  return 0;
}
