// trace_merge: align and merge per-rank per-generation cluster trace
// files into one Perfetto-loadable timeline.
//
//   $ trace_merge -o merged.json trace.r0.g0.json trace.r1.g0.json ...
//
// Inputs are Chrome trace files written by export_chrome_trace — live
// rank exports or supervisor-salvaged flight-recorder fragments — whose
// otherData.clusterClock member names the writer (rank, generation,
// salvaged) and carries its hello-round-trip clock-offset estimates.
// Each file's timestamps are shifted onto rank 0's clock by the writer's
// measured offset (files without an estimate shift by 0), pids become
// ranks, tracks get fresh global tids (generation > 0 tracks renamed
// "<name> (g<gen>)"), and flow events pass through so steal/grant/frame
// arrows span rank tracks in the merged view. Inputs that fail to parse
// are skipped with a warning (a salvage race can leave a torn file);
// exit 0 with at least one merged input, 1 when nothing merged or the
// output cannot be written, 2 on bad usage.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/trace_merge.hpp"
#include "util/json_mini.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> in_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr, "usage: %s -o merged.json <trace.json>...\n",
                   argv[0]);
      return 2;
    } else {
      in_paths.push_back(argv[i]);
    }
  }
  if (out_path.empty() || in_paths.empty()) {
    std::fprintf(stderr, "usage: %s -o merged.json <trace.json>...\n",
                 argv[0]);
    return 2;
  }

  std::vector<pmpl::runtime::MergeInput> inputs;
  for (const std::string& path : in_paths) {
    std::string text, err;
    pmpl::json::Value root;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "trace_merge: skipping %s: cannot read\n",
                   path.c_str());
      continue;
    }
    if (!pmpl::json::parse(text, root, &err)) {
      std::fprintf(stderr, "trace_merge: skipping %s: %s\n", path.c_str(),
                   err.c_str());
      continue;
    }
    inputs.push_back({path, std::move(root)});
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "trace_merge: no parseable inputs\n");
    return 1;
  }

  const pmpl::runtime::MergeResult merged =
      pmpl::runtime::merge_traces(inputs);
  if (!merged.ok) {
    std::fprintf(stderr, "trace_merge: %s\n", merged.error.c_str());
    return 1;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "trace_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const bool ok =
      std::fwrite(merged.json.data(), 1, merged.json.size(), f) ==
      merged.json.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "trace_merge: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("trace_merge: merged %zu/%zu inputs into %s\n", inputs.size(),
              in_paths.size(), out_path.c_str());
  return 0;
}
