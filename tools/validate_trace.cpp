// Trace-file validator for the CI trace-smoke job:
//
//   $ validate_trace <trace.json> [<schema.json>]
//
// Checks a file produced by pmpl::runtime::export_chrome_trace against
// tools/trace_schema.json — required members, `ph` phase enumeration,
// per-tid span balance (an E at depth 0 means the exporter leaked an
// orphaned end), timestamps present and non-negative on payload events,
// and otherData track bookkeeping (dropped <= total; a track's retained
// payload events == total - dropped). Tracks named "transport <r>" (the
// per-rank frame-layer tracks SocketTransport emits) are held to a
// tighter shape: instant-only events named frame_send / frame_recv /
// frame_drop / reconnect / rank_restart / rejoin, each carrying a
// numeric args.arg (the peer rank, or the generation for restart
// instants). The schema file itself is also parsed, so a truncated or
// hand-mangled schema fails loudly rather than silently validating
// nothing. Exit 0 on success, 1 with a diagnostic on the first violation.

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "util/json_mini.hpp"

using pmpl::json::Value;

namespace {

int fail(const std::string& what) {
  std::fprintf(stderr, "validate_trace: FAIL: %s\n", what.c_str());
  return 1;
}

bool load_json(const char* path, Value& out, std::string& err) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    err = std::string("cannot open ") + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (!pmpl::json::parse(text, out, &err)) {
    err = std::string(path) + ": " + err;
    return false;
  }
  return true;
}

/// The phases required to carry a timestamp (metadata events are not).
bool is_payload(const std::string& ph) { return ph != "M"; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [<schema.json>]\n", argv[0]);
    return 2;
  }

  // The schema rides along as the second argument so CI validates the
  // checked-in copy it actually shipped; parsing it guards against drift-
  // by-corruption even though the structural checks below are hard-coded.
  if (argc > 2) {
    Value schema;
    std::string err;
    if (!load_json(argv[2], schema, err)) return fail(err);
    if (!schema.is_object() || !schema.find("properties"))
      return fail(std::string(argv[2]) + " is not a schema object");
  }

  Value root;
  std::string err;
  if (!load_json(argv[1], root, err)) return fail(err);
  if (!root.is_object()) return fail("root is not an object");
  for (const char* key : {"displayTimeUnit", "traceEvents", "otherData"})
    if (!root.find(key))
      return fail(std::string("missing required member '") + key + "'");

  const Value* events = root.find("traceEvents");
  if (!events->is_array()) return fail("traceEvents is not an array");

  // Transport tracks are declared by name in otherData.tracks; collect
  // their tids up front so the event loop can enforce the tighter shape.
  std::set<double> transport_tids;
  if (const Value* other0 = root.find("otherData")) {
    const Value* tracks0 = other0->find("tracks");
    if (tracks0 && tracks0->is_array())
      for (const Value& t : tracks0->as_array()) {
        if (!t.is_object()) continue;
        const Value* nm = t.find("name");
        const Value* tid = t.find("tid");
        if (nm && nm->is_string() && tid && tid->is_number() &&
            nm->as_string().rfind("transport ", 0) == 0)
          transport_tids.insert(tid->as_number());
      }
  }

  std::map<double, long> depth;            // tid -> open span count
  std::map<double, long> payload_per_tid;  // tid -> payload event count
  std::size_t i = 0;
  for (const Value& ev : events->as_array()) {
    const std::string at = "traceEvents[" + std::to_string(i++) + "]";
    if (!ev.is_object()) return fail(at + " is not an object");
    for (const char* key : {"ph", "pid", "tid", "name"})
      if (!ev.find(key)) return fail(at + " missing '" + key + "'");
    const Value* ph = ev.find("ph");
    if (!ph->is_string()) return fail(at + ".ph is not a string");
    const std::string& p = ph->as_string();
    if (p != "B" && p != "E" && p != "i" && p != "C" && p != "M")
      return fail(at + ".ph '" + p + "' not in [B, E, i, C, M]");
    if (!ev.find("tid")->is_number()) return fail(at + ".tid not a number");
    const double tid = ev.find("tid")->as_number();
    if (is_payload(p)) {
      const Value* ts = ev.find("ts");
      if (!ts || !ts->is_number()) return fail(at + " missing numeric ts");
      if (ts->as_number() < 0.0) return fail(at + ".ts is negative");
      ++payload_per_tid[tid];
    }
    if (p == "B") ++depth[tid];
    if (p == "E") {
      if (depth[tid] == 0)
        return fail(at + ": E at depth 0 (orphaned end leaked by exporter)");
      --depth[tid];
    }
    if (p == "C") {
      const Value* args = ev.find("args");
      if (!args || !args->find("value"))
        return fail(at + ": counter event without args.value");
    }
    if (is_payload(p) && transport_tids.count(tid)) {
      // Frame-layer tracks carry only peer-stamped instants.
      if (p != "i")
        return fail(at + ": transport-track event with ph '" + p +
                    "' (instants only)");
      const Value* nm = ev.find("name");
      if (!nm->is_string()) return fail(at + ".name is not a string");
      const std::string& n2 = nm->as_string();
      if (n2 != "frame_send" && n2 != "frame_recv" && n2 != "frame_drop" &&
          n2 != "reconnect" && n2 != "rank_restart" && n2 != "rejoin")
        return fail(at + ": transport instant '" + n2 +
                    "' not in [frame_send, frame_recv, frame_drop, "
                    "reconnect, rank_restart, rejoin]");
      const Value* args = ev.find("args");
      if (!args || !args->find("arg") || !args->find("arg")->is_number())
        return fail(at +
                    ": transport instant without numeric args.arg "
                    "(peer rank)");
    }
  }
  // Spans left open are legal (a crash mid-span; viewers close them at
  // trace end) — only negative depth is a bug, checked above.

  const Value* other = root.find("otherData");
  const Value* tracks = other->find("tracks");
  if (!tracks || !tracks->is_array())
    return fail("otherData.tracks missing or not an array");
  i = 0;
  for (const Value& t : tracks->as_array()) {
    const std::string at = "otherData.tracks[" + std::to_string(i++) + "]";
    for (const char* key : {"tid", "name", "events_total", "events_dropped"})
      if (!t.find(key)) return fail(at + " missing '" + key + "'");
    const double total = t.find("events_total")->as_number();
    const double dropped = t.find("events_dropped")->as_number();
    if (dropped > total) return fail(at + ": dropped > total");
    // Retained events reach traceEvents minus the orphaned ends the
    // exporter intentionally skips — so exported <= retained.
    const double tid = t.find("tid")->as_number();
    if (payload_per_tid[tid] > total - dropped)
      return fail(at + ": more exported events than the ring retained");
  }

  std::printf("validate_trace: OK: %zu events, %zu tracks\n",
              events->as_array().size(), tracks->as_array().size());
  return 0;
}
