// Trace-file validator for the CI trace-smoke job:
//
//   $ validate_trace <trace.json> [<schema.json>] [--complete-flows]
//
// Checks a file produced by pmpl::runtime::export_chrome_trace (or
// merged by tools/trace_merge) against tools/trace_schema.json —
// required members, `ph` phase enumeration, per-tid span balance (an E
// at depth 0 means the exporter leaked an orphaned end), timestamps
// present and non-negative on payload events, flow-event shape (string
// `cat`, hex-string `id`, `bp:"e"` on the flow end), and otherData
// track bookkeeping (dropped <= total; a track's retained payload
// events == total - dropped). Tracks named "transport <r>" (the
// per-rank frame-layer tracks SocketTransport emits) are held to a
// tighter shape: instants named frame_send / frame_recv / frame_drop /
// reconnect / rank_restart / rejoin / clock_sync carrying a numeric
// args.arg (the peer rank, or the generation for restart and clock
// instants), plus "frame" flow events pairing the sends to the recvs;
// frame_send / frame_recv / salvage instants must also carry the
// args.corr correlation id the flows bind on. Nonzero events_dropped
// is a warning, not a failure — the ring overflowing is a sizing
// problem, not a malformed file. With --complete-flows (fault-free
// merged runs) every flow end must have a matching (cat, id) start
// somewhere in the file; without it dangling ends are legal (the start
// may have died with its rank). The schema file itself is also parsed,
// so a truncated or hand-mangled schema fails loudly rather than
// silently validating nothing. Exit 0 on success, 1 with a diagnostic
// on the first violation.

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json_mini.hpp"

using pmpl::json::Value;

namespace {

int fail(const std::string& what) {
  std::fprintf(stderr, "validate_trace: FAIL: %s\n", what.c_str());
  return 1;
}

bool load_json(const char* path, Value& out, std::string& err) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) {
    err = std::string("cannot open ") + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (!pmpl::json::parse(text, out, &err)) {
    err = std::string(path) + ": " + err;
    return false;
  }
  return true;
}

/// The phases required to carry a timestamp (metadata events are not).
bool is_payload(const std::string& ph) { return ph != "M"; }

bool is_flow(const std::string& ph) { return ph == "s" || ph == "f"; }

/// "0x" followed by at least one lowercase hex digit — the exporter's
/// flow-id and corr format.
bool is_hex_id(const std::string& s) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') return false;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// Instants whose args must carry the hex corr id flows bind on.
bool needs_corr(const std::string& name) {
  return name == "frame_send" || name == "frame_recv" || name == "salvage";
}

}  // namespace

int main(int argc, char** argv) {
  bool complete_flows = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--complete-flows") == 0)
      complete_flows = true;
    else if (std::strcmp(argv[i], "--help") == 0)
      pos.clear(), i = argc;
    else
      pos.push_back(argv[i]);
  }
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace.json> [<schema.json>] [--complete-flows]\n",
                 argv[0]);
    return 2;
  }

  // The schema rides along as the second argument so CI validates the
  // checked-in copy it actually shipped; parsing it guards against drift-
  // by-corruption even though the structural checks below are hard-coded.
  if (pos.size() > 1) {
    Value schema;
    std::string err;
    if (!load_json(pos[1], schema, err)) return fail(err);
    if (!schema.is_object() || !schema.find("properties"))
      return fail(std::string(pos[1]) + " is not a schema object");
  }

  Value root;
  std::string err;
  if (!load_json(pos[0], root, err)) return fail(err);
  if (!root.is_object()) return fail("root is not an object");
  for (const char* key : {"displayTimeUnit", "traceEvents", "otherData"})
    if (!root.find(key))
      return fail(std::string("missing required member '") + key + "'");

  const Value* events = root.find("traceEvents");
  if (!events->is_array()) return fail("traceEvents is not an array");

  // Transport tracks are declared by name in otherData.tracks; collect
  // their tids up front so the event loop can enforce the tighter shape.
  // (Merged files rename generation > 0 tracks "transport <r> (g<gen>)",
  // which the prefix match still catches.)
  std::set<double> transport_tids;
  if (const Value* other0 = root.find("otherData")) {
    const Value* tracks0 = other0->find("tracks");
    if (tracks0 && tracks0->is_array())
      for (const Value& t : tracks0->as_array()) {
        if (!t.is_object()) continue;
        const Value* nm = t.find("name");
        const Value* tid = t.find("tid");
        if (nm && nm->is_string() && tid && tid->is_number() &&
            nm->as_string().rfind("transport ", 0) == 0)
          transport_tids.insert(tid->as_number());
      }
  }

  // Two passes over the flow events: every start key is collected before
  // any end is judged, so --complete-flows does not depend on the array
  // order of a start/end pair that the clock alignment may have reordered
  // by a microsecond.
  std::set<std::string> flow_starts;
  for (const Value& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    const Value* ph = ev.find("ph");
    const Value* cat = ev.find("cat");
    const Value* id = ev.find("id");
    if (ph && ph->is_string() && ph->as_string() == "s" && cat && id &&
        cat->is_string() && id->is_string())
      flow_starts.insert(cat->as_string() + "|" + id->as_string());
  }

  std::map<double, long> depth;            // tid -> open span count
  std::map<double, long> payload_per_tid;  // tid -> payload event count
  std::size_t i = 0;
  for (const Value& ev : events->as_array()) {
    const std::string at = "traceEvents[" + std::to_string(i++) + "]";
    if (!ev.is_object()) return fail(at + " is not an object");
    for (const char* key : {"ph", "pid", "tid", "name"})
      if (!ev.find(key)) return fail(at + " missing '" + key + "'");
    const Value* ph = ev.find("ph");
    if (!ph->is_string()) return fail(at + ".ph is not a string");
    const std::string& p = ph->as_string();
    if (p != "B" && p != "E" && p != "i" && p != "C" && p != "M" &&
        p != "s" && p != "f")
      return fail(at + ".ph '" + p + "' not in [B, E, i, C, M, s, f]");
    if (!ev.find("tid")->is_number()) return fail(at + ".tid not a number");
    const double tid = ev.find("tid")->as_number();
    if (is_payload(p)) {
      const Value* ts = ev.find("ts");
      if (!ts || !ts->is_number()) return fail(at + " missing numeric ts");
      if (ts->as_number() < 0.0) return fail(at + ".ts is negative");
      ++payload_per_tid[tid];
    }
    if (p == "B") ++depth[tid];
    if (p == "E") {
      if (depth[tid] == 0)
        return fail(at + ": E at depth 0 (orphaned end leaked by exporter)");
      --depth[tid];
    }
    if (p == "C") {
      const Value* args = ev.find("args");
      if (!args || !args->find("value"))
        return fail(at + ": counter event without args.value");
    }
    if (is_flow(p)) {
      const Value* cat = ev.find("cat");
      const Value* id = ev.find("id");
      if (!cat || !cat->is_string())
        return fail(at + ": flow event without string cat");
      if (!id || !id->is_string() || !is_hex_id(id->as_string()))
        return fail(at + ": flow event without hex-string id");
      if (p == "f") {
        const Value* bp = ev.find("bp");
        if (!bp || !bp->is_string() || bp->as_string() != "e")
          return fail(at + ": flow end without bp 'e'");
        if (complete_flows &&
            !flow_starts.count(cat->as_string() + "|" + id->as_string()))
          return fail(at + ": flow end (" + cat->as_string() + ", " +
                      id->as_string() + ") with no matching start");
      }
    }
    if (ev.find("name")->is_string() &&
        needs_corr(ev.find("name")->as_string())) {
      const Value* args = ev.find("args");
      const Value* corr = args ? args->find("corr") : nullptr;
      if (!corr || !corr->is_string() || !is_hex_id(corr->as_string()))
        return fail(at + ": '" + ev.find("name")->as_string() +
                    "' without hex args.corr correlation id");
    }
    if (is_payload(p) && transport_tids.count(tid)) {
      // Frame-layer tracks carry peer-stamped instants and frame flows.
      if (p != "i" && !is_flow(p))
        return fail(at + ": transport-track event with ph '" + p +
                    "' (instants and flows only)");
      const Value* nm = ev.find("name");
      if (!nm->is_string()) return fail(at + ".name is not a string");
      const std::string& n2 = nm->as_string();
      if (p == "i") {
        if (n2 != "frame_send" && n2 != "frame_recv" && n2 != "frame_drop" &&
            n2 != "reconnect" && n2 != "rank_restart" && n2 != "rejoin" &&
            n2 != "clock_sync")
          return fail(at + ": transport instant '" + n2 +
                      "' not in [frame_send, frame_recv, frame_drop, "
                      "reconnect, rank_restart, rejoin, clock_sync]");
        const Value* args = ev.find("args");
        if (!args || !args->find("arg") || !args->find("arg")->is_number())
          return fail(at +
                      ": transport instant without numeric args.arg "
                      "(peer rank)");
      }
    }
  }
  // Spans left open are legal (a crash mid-span; viewers close them at
  // trace end) — only negative depth is a bug, checked above.

  const Value* other = root.find("otherData");
  const Value* tracks = other->find("tracks");
  if (!tracks || !tracks->is_array())
    return fail("otherData.tracks missing or not an array");
  i = 0;
  std::size_t warned_drops = 0;
  for (const Value& t : tracks->as_array()) {
    const std::string at = "otherData.tracks[" + std::to_string(i++) + "]";
    for (const char* key : {"tid", "name", "events_total", "events_dropped"})
      if (!t.find(key)) return fail(at + " missing '" + key + "'");
    const double total = t.find("events_total")->as_number();
    const double dropped = t.find("events_dropped")->as_number();
    if (dropped > total) return fail(at + ": dropped > total");
    if (dropped > 0) {
      ++warned_drops;
      std::fprintf(stderr,
                   "validate_trace: WARN: %s ('%s') dropped %.0f of %.0f "
                   "events (ring too small for this run)\n",
                   at.c_str(), t.find("name")->as_string().c_str(), dropped,
                   total);
    }
    // Retained events reach traceEvents minus the orphaned ends the
    // exporter intentionally skips — so exported <= retained.
    const double tid = t.find("tid")->as_number();
    if (payload_per_tid[tid] > total - dropped)
      return fail(at + ": more exported events than the ring retained");
  }

  std::printf("validate_trace: OK: %zu events, %zu tracks%s\n",
              events->as_array().size(), tracks->as_array().size(),
              warned_drops ? " (with drop warnings)" : "");
  return 0;
}
