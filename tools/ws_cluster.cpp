// ws_cluster: run the work-stealing protocol on real forked processes
// over Unix-domain sockets, optionally injecting a fault plan (parent
// SIGKILLs crash victims; link/token faults ride inside each rank's
// transport), then hold the run to the sim-vs-real gate: the same seed
// and plan replayed through the DES must produce the identical roadmap
// hash (DESIGN.md §5h).
//
//   $ ws_cluster [--ranks P] [--regions N] [--seed S]
//                [--policy hybrid|rand|diffusive|lifeline] [--rand-k K]
//                [--steal-max M]
//                [--faults plan.json]   fault plan (simulated seconds)
//                [--time-scale K]       wall seconds per simulated second
//                [--trace PREFIX]       per-incarnation traces
//                                       PREFIX.r<r>.g<gen>.json (plus
//                                       supervisor-salvaged fragments of
//                                       ranks that died tracing)
//                [--report FILE]        JSON summary of both runs + gate
//                [--timeout S]          parent watchdog (default 90)
//                [--no-gate]            skip the DES replay / comparison
//                [--restart]            supervisor re-forks dead ranks
//                [--max-restarts N]     restart budget per rank (default 3)
//                [--suspect-after S]    stalled-checkpoint replacement (zombie
//                                       scenario); 0 disables (default)
//
// Chaos-soak mode (ignores the workload/fault flags above):
//   $ ws_cluster --chaos N [--chaos-seed S] [--chaos-out FILE]
//                [--ranks P] [--regions N] [--time-scale K]
// runs N seeded randomized kill/pause/loss/partition schedules under the
// restart supervisor and asserts the invariant suite (DESIGN.md §5i),
// writing the per-schedule report to --chaos-out.
//
// Exit codes: 0 gate passed (or --no-gate and the cluster ran clean),
// 1 gate or protocol failure, 2 bad usage or a malformed fault plan
// (the error names the offending field).

#include <cstdio>
#include <string>

#include "loadbal/chaos.hpp"
#include "loadbal/ws_cluster.hpp"
#include "runtime/fault_io.hpp"
#include "util/args.hpp"

using namespace pmpl;

namespace {

bool parse_policy(const std::string& s, loadbal::StealPolicyKind& out) {
  if (s == "hybrid") out = loadbal::StealPolicyKind::kHybrid;
  else if (s == "rand") out = loadbal::StealPolicyKind::kRandK;
  else if (s == "diffusive") out = loadbal::StealPolicyKind::kDiffusive;
  else if (s == "lifeline") out = loadbal::StealPolicyKind::kLifeline;
  else return false;
  return true;
}

void print_rank_table(const loadbal::ClusterResult& c) {
  std::printf("%-5s %-6s %-6s %5s %6s %6s %6s %7s %7s %6s %6s\n", "rank",
              "state", "exit", "local", "stolen", "reqs", "grants",
              "retrans", "recov", "deaths", "drops");
  for (std::size_t r = 0; r < c.ranks.size(); ++r) {
    // A killed rank that still reported was resurrected by the supervisor
    // (its final incarnation terminated normally).
    const char* state = c.killed[r] && !c.reported[r] ? "KILLED"
                        : !c.reported[r]              ? "LOST"
                        : c.killed[r] && c.ranks[r].terminated ? "resur"
                        : c.ranks[r].fenced                    ? "FENCED"
                        : c.ranks[r].terminated                ? "done"
                                                               : "WEDGED";
    if (!c.reported[r]) {
      std::printf("%-5zu %-6s %-6d\n", r, state, c.exit_codes[r]);
      continue;
    }
    const auto& k = c.ranks[r];
    std::printf("%-5zu %-6s %-6d %5llu %6llu %6llu %6llu %7llu %7llu "
                "%6llu %6llu\n",
                r, state, c.exit_codes[r],
                static_cast<unsigned long long>(k.local_tasks),
                static_cast<unsigned long long>(k.stolen_tasks),
                static_cast<unsigned long long>(k.steal_requests),
                static_cast<unsigned long long>(k.steal_grants),
                static_cast<unsigned long long>(k.grant_retransmits),
                static_cast<unsigned long long>(k.regions_recovered),
                static_cast<unsigned long long>(k.deaths_detected),
                static_cast<unsigned long long>(k.transport.frames_dropped));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto ranks =
      static_cast<std::uint32_t>(args.get_i64("ranks", 4, 1, 64));
  const auto regions =
      static_cast<std::uint32_t>(args.get_i64("regions", 96, 1, 1 << 20));
  const auto seed = static_cast<std::uint64_t>(args.get_i64("seed", 42));
  const double time_scale = args.get_f64("time-scale", 1.0, 1e-6);

  const auto chaos_n =
      static_cast<std::uint32_t>(args.get_i64("chaos", 0, 0, 100000));
  if (chaos_n > 0) {
    loadbal::ChaosConfig ccfg;
    ccfg.schedules = chaos_n;
    ccfg.seed = static_cast<std::uint64_t>(
        args.get_i64("chaos-seed", static_cast<std::int64_t>(ccfg.seed)));
    ccfg.ranks = ranks;
    ccfg.regions = static_cast<std::uint32_t>(
        args.get_i64("regions", static_cast<std::int64_t>(ccfg.regions)));
    ccfg.time_scale = time_scale;
    std::printf("chaos soak: %u schedules, %u ranks x %u regions, seed %llu\n",
                ccfg.schedules, ccfg.ranks, ccfg.regions,
                static_cast<unsigned long long>(ccfg.seed));
    const auto soak = loadbal::run_chaos_soak(ccfg);
    for (const auto& s : soak.schedules)
      std::printf("  schedule %2u seed %016llx: %s%s%s (restarts=%u "
                  "zombies=%llu stale=%llu)\n",
                  s.index, static_cast<unsigned long long>(s.schedule_seed),
                  s.ok ? "ok" : "FAIL", s.ok ? "" : " — ", s.error.c_str(),
                  s.restarts_total,
                  static_cast<unsigned long long>(s.zombies_fenced),
                  static_cast<unsigned long long>(s.stale_frames_rejected));
    std::printf("chaos soak: %u/%u passed, leaks: %s (fds %zu->%zu, "
                "tmp %zu->%zu)\n",
                soak.passed, soak.passed + soak.failed,
                soak.no_leaks ? "none" : "LEAKED", soak.fds_before,
                soak.fds_after, soak.tmp_before, soak.tmp_after);
    const std::string out = args.get("chaos-out", "");
    if (!out.empty()) {
      if (!loadbal::write_chaos_report(soak, ccfg, out)) {
        std::fprintf(stderr, "error: cannot write report to %s\n",
                     out.c_str());
        return 2;
      }
      std::printf("report: %s\n", out.c_str());
    }
    return soak.ok ? 0 : 1;
  }
  const std::string report_path = args.get("report", "");
  const bool run_gate = !args.get_bool("no-gate", false);

  loadbal::StealPolicyKind policy = loadbal::StealPolicyKind::kHybrid;
  if (!parse_policy(args.get("policy", "hybrid"), policy)) {
    std::fprintf(stderr, "error: --policy: unknown policy '%s'\n",
                 args.get("policy", "").c_str());
    return 2;
  }

  runtime::FaultPlan plan;
  const std::string plan_path = args.get("faults", "");
  if (!plan_path.empty()) {
    std::string err;
    if (!runtime::load_fault_plan(plan_path, plan, err)) {
      std::fprintf(stderr, "error: --faults: %s\n", err.c_str());
      return 2;
    }
  }

  const auto work = loadbal::make_cluster_items(seed, regions, ranks);

  loadbal::ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.faults = plan;
  cfg.trace_path = args.get("trace", "");
  cfg.timeout_s = args.get_f64("timeout", 90.0, 1.0);
  cfg.rank.items = work.items;
  cfg.rank.initial = work.initial;
  cfg.rank.policy = policy;
  cfg.rank.rand_k =
      static_cast<std::uint32_t>(args.get_i64("rand-k", 2, 1, 64));
  cfg.rank.steal_max_items =
      static_cast<std::uint32_t>(args.get_i64("steal-max", 1, 1, 1 << 16));
  cfg.rank.seed = seed;
  cfg.rank.time_scale = time_scale;
  cfg.restart.enabled = args.get_bool("restart", false);
  cfg.restart.max_restarts =
      static_cast<std::uint32_t>(args.get_i64("max-restarts", 3, 0, 1000));
  cfg.restart.suspect_after_s = args.get_f64("suspect-after", 0.0, 0.0);

  std::printf("ws_cluster: %u ranks x %u regions, seed %llu, policy %s%s\n",
              ranks, regions, static_cast<unsigned long long>(seed),
              args.get("policy", "hybrid").c_str(),
              plan.empty() ? "" : ", faults injected");
  const auto real = loadbal::run_ws_cluster(cfg);
  if (!real.ok)
    std::fprintf(stderr, "harness error: %s\n", real.error.c_str());
  print_rank_table(real);
  std::printf("cluster: terminated=%s all_done=%s recovered=%llu "
              "roadmap=%016llx\n",
              real.terminated_all ? "yes" : "NO",
              real.all_done ? "yes" : "NO",
              static_cast<unsigned long long>(real.regions_recovered),
              static_cast<unsigned long long>(real.roadmap));
  if (cfg.restart.enabled) {
    std::uint32_t restarts = 0;
    for (std::uint32_t r : real.restarts) restarts += r;
    std::printf("supervisor: restarts=%u zombies_fenced=%llu\n", restarts,
                static_cast<unsigned long long>(real.zombies_fenced));
  }
  for (const std::string& p : real.traces_salvaged)
    std::printf("salvaged: %s\n", p.c_str());

  bool gate_ok = true;
  std::uint64_t des_hash = 0;
  loadbal::WsResult des;
  if (run_gate) {
    loadbal::WsConfig wcfg;
    wcfg.policy = policy;
    wcfg.rand_k = cfg.rank.rand_k;
    wcfg.seed = seed;
    wcfg.steal_max_items = cfg.rank.steal_max_items;
    wcfg.faults = plan;
    des = loadbal::simulate_work_stealing(work.items, work.initial, ranks,
                                          wcfg);
    des_hash = loadbal::roadmap_hash(seed, loadbal::completed_set(des));
    gate_ok = des_hash == real.roadmap && real.terminated_all && real.ok;
    std::printf("gate: des=%016llx real=%016llx -> %s\n",
                static_cast<unsigned long long>(des_hash),
                static_cast<unsigned long long>(real.roadmap),
                gate_ok ? "MATCH" : "MISMATCH");
  }

  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   report_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"ranks\": %u,\n  \"regions\": %u,\n"
                 "  \"seed\": %llu,\n  \"time_scale\": %.17g,\n"
                 "  \"fault_plan\": %s,\n",
                 ranks, regions, static_cast<unsigned long long>(seed),
                 time_scale, runtime::fault_plan_to_json(plan).c_str());
    std::fprintf(f,
                 "  \"real\": {\"terminated_all\": %s, \"all_done\": %s, "
                 "\"roadmap\": \"%016llx\", \"steal_grants\": %llu, "
                 "\"regions_recovered\": %llu, \"grant_retransmits\": %llu, "
                 "\"deaths_detected\": %llu},\n",
                 real.terminated_all ? "true" : "false",
                 real.all_done ? "true" : "false",
                 static_cast<unsigned long long>(real.roadmap),
                 static_cast<unsigned long long>(real.steal_grants),
                 static_cast<unsigned long long>(real.regions_recovered),
                 static_cast<unsigned long long>(real.grant_retransmits),
                 static_cast<unsigned long long>(real.deaths_detected));
    if (run_gate)
      std::fprintf(f,
                   "  \"des\": {\"terminated\": %s, \"roadmap\": "
                   "\"%016llx\", \"steal_grants\": %llu},\n"
                   "  \"gate\": %s\n}\n",
                   des.terminated ? "true" : "false",
                   static_cast<unsigned long long>(des_hash),
                   static_cast<unsigned long long>(des.steal_grants),
                   gate_ok ? "true" : "false");
    else
      std::fprintf(f, "  \"gate\": null\n}\n");
    std::fclose(f);
    std::printf("report: %s\n", report_path.c_str());
  }

  if (!real.ok) return 1;
  if (run_gate && !gate_ok) return 1;
  if (!run_gate && (!real.terminated_all || !real.all_done)) return 1;
  return 0;
}
