// ws_report: load-imbalance and chaos post-mortem report over a merged
// cluster trace (see tools/trace_merge).
//
//   $ ws_report <merged.json> [--json report.json] [--markdown report.md]
//
// Reduces the merged timeline to per-rank busy/idle/steal breakdowns,
// the busy-time coefficient of variation, log2 histograms of steal
// latency and grant round-trip (measured from the paired flow events),
// and the chaos post-mortem: deaths detected, flight-recorder fragments
// salvaged, and rehome-to-first-execution recovery latency. Without
// --json/--markdown the markdown report prints to stdout. The JSON shape
// is pinned by tools/ws_report_schema.json. Exit 0 on success, 1 on a
// malformed trace, 2 on bad usage.

#include <cstdio>
#include <string>

#include "loadbal/ws_report.hpp"
#include "util/args.hpp"
#include "util/json_mini.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      // Skip the flag's detached value (ArgParser consumes it below).
      if (a.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0)
        ++i;
      continue;
    }
    in_path = a;
    break;
  }
  pmpl::ArgParser args(argc, argv);
  if (in_path.empty() || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <merged.json> [--json report.json] "
                 "[--markdown report.md]\n",
                 argv[0]);
    return 2;
  }

  std::string text, err;
  pmpl::json::Value root;
  if (!read_file(in_path, text)) {
    std::fprintf(stderr, "ws_report: cannot read %s\n", in_path.c_str());
    return 1;
  }
  if (!pmpl::json::parse(text, root, &err)) {
    std::fprintf(stderr, "ws_report: %s: %s\n", in_path.c_str(), err.c_str());
    return 1;
  }
  err.clear();
  const pmpl::loadbal::WsReport report =
      pmpl::loadbal::analyze_trace(root, &err);
  if (!err.empty()) {
    std::fprintf(stderr, "ws_report: %s: %s\n", in_path.c_str(), err.c_str());
    return 1;
  }

  const std::string json_path = args.get("json", "");
  const std::string md_path = args.get("markdown", "");
  if (!json_path.empty() &&
      !write_file(json_path, pmpl::loadbal::render_json(report))) {
    std::fprintf(stderr, "ws_report: cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (!md_path.empty() &&
      !write_file(md_path, pmpl::loadbal::render_markdown(report))) {
    std::fprintf(stderr, "ws_report: cannot write %s\n", md_path.c_str());
    return 1;
  }
  if (json_path.empty() && md_path.empty())
    std::fputs(pmpl::loadbal::render_markdown(report).c_str(), stdout);
  else
    std::printf("ws_report: %zu ranks, busy CV %.3f, %zu deaths, "
                "%zu salvaged\n",
                report.ranks.size(), report.busy_cv, report.deaths.size(),
                report.salvages.size());
  return 0;
}
